//! Doubly-robust (AIPW) CATE estimator.
//!
//! Augmented inverse propensity weighting combines the two nuisance models
//! the other estimators use alone — an outcome regression per arm (as in
//! [`linear`](super::linear), fit separately on treated and control rows)
//! and a logistic propensity model (as in [`ipw`](mod@super::ipw)) — into the
//! efficient-influence-function score:
//!
//! `ψ_i = m̂₁(z_i) − m̂₀(z_i) + T_i (y_i − m̂₁(z_i)) / p̂_i
//!        − (1 − T_i)(y_i − m̂₀(z_i)) / (1 − p̂_i)`
//!
//! `CATE = mean(ψ)`, with the standard error the sample standard deviation
//! of `ψ` over `√n` (the influence-function variance).
//!
//! The estimator is **doubly robust**: it is consistent when *either* the
//! outcome regressions *or* the propensity model is correctly specified —
//! the augmentation term cancels the bias of whichever nuisance model is
//! wrong. `tests/integration_estimators.rs` asserts this property against a
//! synthetic SCM with a known ground-truth effect under deliberately
//! misspecified nuisance models. When both models are correct AIPW is
//! semiparametrically efficient, which is why it is the recommended default
//! once estimator choice matters more than raw speed.
//!
//! Propensities are clipped away from {0, 1} exactly as in
//! [`ipw`](mod@super::ipw), and the estimator *refuses* (typed error) when
//! the fitted propensity model (near-)separates the arms — over half the
//! rows at a clipped propensity — because the per-arm outcome models would
//! then pure-extrapolate while the influence-function variance understates
//! the error. Cache key: `"aipw"`.

use super::{ipw, kernel, normal_inference, Estimate, HotStats, MIN_ARM_SIZE};
use crate::error::{CausalError, Result};
use crate::linalg::solve_spd;
use faircap_table::{DataFrame, Mask};
use std::time::Instant;

/// Estimate the CATE by augmented inverse propensity weighting with
/// automatic worker selection. See module docs.
pub fn estimate(
    df: &DataFrame,
    group: &Mask,
    treated: &Mask,
    outcome: &str,
    adjustment: &[String],
) -> Result<Estimate> {
    let workers = kernel::auto_workers(group.count());
    estimate_with(
        df,
        group,
        treated,
        outcome,
        adjustment,
        workers,
        &mut HotStats::default(),
    )
}

/// AIPW estimate over the columnar kernels, with an explicit worker count
/// and hot-path cost accounting.
pub fn estimate_with(
    df: &DataFrame,
    group: &Mask,
    treated: &Mask,
    outcome: &str,
    adjustment: &[String],
    workers: usize,
    stats: &mut HotStats,
) -> Result<Estimate> {
    let n = group.count();
    let n_treated = group.intersect_count(treated);
    let n_control = n - n_treated;
    if n_treated < MIN_ARM_SIZE || n_control < MIN_ARM_SIZE {
        return Err(CausalError::Estimation(format!(
            "insufficient overlap: {n_treated} treated / {n_control} control"
        )));
    }

    // Shared design [1, Z...] over the group rows: the propensity model and
    // both per-arm outcome regressions all read the same columnar encoding.
    let t0 = Instant::now();
    let x = kernel::build_columns(df, adjustment, group, None, workers, &mut stats.tasks)?;
    let y = kernel::gather_outcome(df, outcome, group)?;
    let t = kernel::gather_indicator(group, treated);
    stats.build_ns += t0.elapsed().as_nanos() as u64;

    let propensities = ipw::logistic_fit(x.cols(), &t, workers, &mut stats.tasks)?;
    // Positivity guard: when the propensity model (near-)separates the
    // arms, the per-arm outcome regressions extrapolate into covariate
    // regions their arm never observed and the influence-function variance
    // wildly understates the error. Refuse rather than report a confident
    // artifact — mirrors the stratified estimator's positivity refusal.
    let clipped = propensities
        .iter()
        .filter(|p| **p < ipw::CLIP || **p > 1.0 - ipw::CLIP)
        .count();
    if clipped * 2 > n {
        return Err(CausalError::Estimation(format!(
            "insufficient overlap: propensity model separates arms \
             ({clipped}/{n} rows with extreme propensity)"
        )));
    }
    let beta_t = fit_arm(x.cols(), &y, &t, true, workers, &mut stats.tasks)?;
    let beta_c = fit_arm(x.cols(), &y, &t, false, workers, &mut stats.tasks)?;

    // Doubly-robust scores; counterfactual means stream column-major.
    let m1s = kernel::mat_vec_columns(x.cols(), &beta_t);
    let m0s = kernel::mat_vec_columns(x.cols(), &beta_c);
    let mut psi = vec![0.0; n];
    for i in 0..n {
        let m1 = m1s[i];
        let m0 = m0s[i];
        let p = propensities[i].clamp(ipw::CLIP, 1.0 - ipw::CLIP);
        psi[i] = m1 - m0
            + if t[i] {
                (y[i] - m1) / p
            } else {
                -(y[i] - m0) / (1.0 - p)
            };
    }
    let cate = psi.iter().sum::<f64>() / n as f64;
    // Influence-function variance: Var(ψ)/n.
    let var_psi =
        psi.iter().map(|v| (v - cate) * (v - cate)).sum::<f64>() / (n as f64 - 1.0).max(1.0);
    let var = var_psi / n as f64;
    let (std_err, t_stat, p_value) = normal_inference(cate, var);
    Ok(Estimate {
        cate,
        std_err,
        t_stat,
        p_value,
        n_treated,
        n_control,
    })
}

/// OLS fit of the outcome on `[1, Z]` restricted to one arm; returns the
/// coefficient vector used to predict counterfactual means for *all* rows.
/// The arm restriction is a dense 0/1 multiplier so the masked gram and
/// right-hand side run through the blocked arm kernel without branching.
/// Shared with the matching estimator's bias-adjustment step.
pub(crate) fn fit_arm(
    cols: &[Vec<f64>],
    y: &[f64],
    t: &[bool],
    arm: bool,
    workers: usize,
    tasks: &mut u64,
) -> Result<Vec<f64>> {
    let mask: Vec<f64> = t.iter().map(|&tr| (tr == arm) as u8 as f64).collect();
    let (gram, xty) = kernel::arm_gram_xty(cols, y, &mask, workers, tasks);
    solve_spd(&gram, &xty)
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use faircap_table::DataFrame;

    /// Same confounded fixture as the other estimators:
    /// z ∈ {low, high}; treatment more likely when z=high; O = 10·T + 50·z.
    fn confounded_frame() -> (DataFrame, Mask) {
        let mut z = Vec::new();
        let mut t = Vec::new();
        let mut o = Vec::new();
        for i in 0..40 {
            z.push("low");
            let ti = i < 10;
            t.push(ti);
            o.push(if ti { 10.0 } else { 0.0 });
        }
        for i in 0..40 {
            z.push("high");
            let ti = i < 30;
            t.push(ti);
            o.push(50.0 + if ti { 10.0 } else { 0.0 });
        }
        let treated = Mask::from_bools(&t);
        let df = DataFrame::builder()
            .cat("z", &z)
            .float("o", o)
            .build()
            .unwrap();
        (df, treated)
    }

    #[test]
    fn recovers_true_effect_under_confounding() {
        let (df, treated) = confounded_frame();
        let all = Mask::ones(df.n_rows());
        let est = estimate(&df, &all, &treated, "o", &["z".into()]).unwrap();
        assert!((est.cate - 10.0).abs() < 1e-6, "cate = {}", est.cate);
        assert_eq!(est.n_treated, 40);
        assert_eq!(est.n_control, 40);
    }

    #[test]
    fn empty_adjustment_is_difference_in_means() {
        let (df, treated) = confounded_frame();
        let all = Mask::ones(df.n_rows());
        let est = estimate(&df, &all, &treated, "o", &[]).unwrap();
        // With a marginal propensity and arm-mean outcome models the score
        // collapses to the naive contrast: 47.5 − 12.5 = 35.
        assert!((est.cate - 35.0).abs() < 1e-6, "cate = {}", est.cate);
    }

    #[test]
    fn agrees_with_linear_on_clean_design() {
        let (df, treated) = confounded_frame();
        let all = Mask::ones(df.n_rows());
        let aipw = estimate(&df, &all, &treated, "o", &["z".into()]).unwrap();
        let lin = super::super::linear::estimate(&df, &all, &treated, "o", &["z".into()]).unwrap();
        assert!(
            (aipw.cate - lin.cate).abs() < 1e-6,
            "aipw {} vs linear {}",
            aipw.cate,
            lin.cate
        );
    }

    #[test]
    fn zero_effect_not_significant() {
        // Outcome independent of treatment; deterministic pseudo-noise.
        let n = 200;
        let mut t = Vec::new();
        let mut o = Vec::new();
        let mut state = 0x9e3779b9u64;
        for i in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            t.push(i % 2 == 0);
            o.push((state as f64 / u64::MAX as f64) * 8.0);
        }
        let treated = Mask::from_bools(&t);
        let df = DataFrame::builder().float("o", o).build().unwrap();
        let all = Mask::ones(n);
        let est = estimate(&df, &all, &treated, "o", &[]).unwrap();
        assert!(!est.is_significant(0.01), "p = {}", est.p_value);
    }

    #[test]
    fn insufficient_overlap_rejected() {
        let df = DataFrame::builder()
            .float("o", vec![1.0; 20])
            .build()
            .unwrap();
        let all = Mask::ones(20);
        let treated = Mask::from_indices(20, &[0, 1]);
        assert!(estimate(&df, &all, &treated, "o", &[]).is_err());
    }

    #[test]
    fn complete_separation_rejected() {
        // Treatment perfectly determined by the covariate: every z=a row
        // treated, every z=b row control. No overlap → the per-arm outcome
        // models would pure-extrapolate; the positivity guard must refuse.
        let mut z = Vec::new();
        let mut t = Vec::new();
        let mut o = Vec::new();
        for i in 0..40 {
            let a = i < 20;
            z.push(if a { "a" } else { "b" });
            t.push(a);
            o.push(if a { 67.0 } else { 50.0 } + (i % 7) as f64 * 0.1);
        }
        let treated = Mask::from_bools(&t);
        let df = DataFrame::builder()
            .cat("z", &z)
            .float("o", o)
            .build()
            .unwrap();
        let all = Mask::ones(40);
        let err = estimate(&df, &all, &treated, "o", &["z".into()]).unwrap_err();
        assert!(err.to_string().contains("overlap"), "{err}");
    }
}
