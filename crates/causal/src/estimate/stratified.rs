//! Exact-stratification CATE estimator.
//!
//! Implements the adjustment formula literally:
//!
//! `CATE = Σ_z P(z | group) · ( E[O | T=1, z] − E[O | T=0, z] )`
//!
//! where `z` ranges over the joint values of the adjustment covariates inside
//! the subgroup. Numeric covariates are quantile-binned (4 bins) first.
//! Strata violating positivity (an empty arm) are skipped; the estimate is
//! reweighted over the valid strata, and the fraction of rows in valid
//! strata is exposed for diagnostics via the returned arm counts.

use super::{normal_inference, Estimate, MIN_ARM_SIZE};
use crate::error::{CausalError, Result};
use faircap_table::{Column, DataFrame, Mask};

/// Number of quantile bins for numeric covariates.
const NUMERIC_BINS: usize = 4;

/// Estimate the CATE by stratification. See module docs.
pub fn estimate(
    df: &DataFrame,
    group: &Mask,
    treated: &Mask,
    outcome: &str,
    adjustment: &[String],
) -> Result<Estimate> {
    let n = group.count();
    let n_treated_all = group.intersect_count(treated);
    let n_control_all = n - n_treated_all;
    if n_treated_all < MIN_ARM_SIZE || n_control_all < MIN_ARM_SIZE {
        return Err(CausalError::Estimation(format!(
            "insufficient overlap: {n_treated_all} treated / {n_control_all} control"
        )));
    }
    let outcome_col = df.column(outcome)?;
    if !outcome_col.data_type().is_numeric()
        && outcome_col.data_type() != faircap_table::DataType::Bool
    {
        return Err(CausalError::Estimation(format!(
            "outcome `{outcome}` is not numeric"
        )));
    }

    // Stratum key per row: joint code over the adjustment covariates.
    let keys = stratum_keys(df, group, adjustment)?;

    // Aggregate per (stratum, arm): count, sum, sumsq.
    use std::collections::HashMap;
    #[derive(Default, Clone)]
    struct Arm {
        n: usize,
        sum: f64,
        sumsq: f64,
    }
    let mut strata: HashMap<u64, (Arm, Arm)> = HashMap::new();
    for (pos, row) in group.iter_ones().enumerate() {
        let y = outcome_col
            .get_f64(row)
            .ok_or_else(|| CausalError::Estimation("non-numeric outcome cell".into()))?;
        let entry = strata.entry(keys[pos]).or_default();
        let arm = if treated.get(row) {
            &mut entry.0
        } else {
            &mut entry.1
        };
        arm.n += 1;
        arm.sum += y;
        arm.sumsq += y * y;
    }

    // Adjustment formula over strata with positivity.
    let mut weight_total = 0.0;
    let mut effect = 0.0;
    let mut variance = 0.0;
    let mut n_treated = 0;
    let mut n_control = 0;
    for (t_arm, c_arm) in strata.values() {
        if t_arm.n == 0 || c_arm.n == 0 {
            continue;
        }
        let w = (t_arm.n + c_arm.n) as f64;
        let mean_t = t_arm.sum / t_arm.n as f64;
        let mean_c = c_arm.sum / c_arm.n as f64;
        effect += w * (mean_t - mean_c);
        // Per-arm sample variances for the delta's variance.
        let var_t = sample_var(t_arm.n, t_arm.sum, t_arm.sumsq);
        let var_c = sample_var(c_arm.n, c_arm.sum, c_arm.sumsq);
        variance += w * w * (var_t / t_arm.n.max(1) as f64 + var_c / c_arm.n.max(1) as f64);
        weight_total += w;
        n_treated += t_arm.n;
        n_control += c_arm.n;
    }
    if weight_total == 0.0 || n_treated < MIN_ARM_SIZE || n_control < MIN_ARM_SIZE {
        return Err(CausalError::Estimation(
            "no stratum satisfies positivity".into(),
        ));
    }
    let cate = effect / weight_total;
    let (std_err, t_stat, p_value) =
        normal_inference(cate, variance / (weight_total * weight_total));
    Ok(Estimate {
        cate,
        std_err,
        t_stat,
        p_value,
        n_treated,
        n_control,
    })
}

fn sample_var(n: usize, sum: f64, sumsq: f64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    ((sumsq - sum * sum / nf) / (nf - 1.0)).max(0.0)
}

/// Joint stratum key per group row, in `group.iter_ones()` order.
fn stratum_keys(df: &DataFrame, group: &Mask, adjustment: &[String]) -> Result<Vec<u64>> {
    let rows: Vec<usize> = group.to_indices();
    let mut keys = vec![0u64; rows.len()];
    for name in adjustment {
        let col = df.column(name)?;
        let codes: Vec<u64> = match col {
            Column::Cat(c) => rows.iter().map(|&r| c.codes()[r] as u64).collect(),
            Column::Bool(v) => rows.iter().map(|&r| v[r] as u64).collect(),
            Column::Int(_) | Column::Float(_) => quantile_bins(col, &rows),
        };
        let cardinality = codes.iter().copied().max().unwrap_or(0) + 1;
        for (k, c) in keys.iter_mut().zip(codes) {
            *k = *k * cardinality + c;
        }
    }
    Ok(keys)
}

/// Quantile-bin a numeric column over the given rows into `NUMERIC_BINS`
/// bins; ties collapse bins naturally.
fn quantile_bins(col: &Column, rows: &[usize]) -> Vec<u64> {
    let mut values: Vec<f64> = rows
        .iter()
        .map(|&r| col.get_f64(r).unwrap_or(0.0))
        .collect();
    let mut sorted = values.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let cuts: Vec<f64> = (1..NUMERIC_BINS)
        .map(|q| sorted[(q * sorted.len() / NUMERIC_BINS).min(sorted.len() - 1)])
        .collect();
    values
        .drain(..)
        .map(|v| cuts.iter().take_while(|&&c| v >= c).count() as u64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use faircap_table::DataFrame;

    /// Same confounded fixture as the linear estimator tests.
    fn confounded_frame() -> (DataFrame, Mask) {
        let mut z = Vec::new();
        let mut t = Vec::new();
        let mut o = Vec::new();
        for i in 0..40 {
            z.push("low");
            let ti = i < 10;
            t.push(ti);
            o.push(if ti { 10.0 } else { 0.0 });
        }
        for i in 0..40 {
            z.push("high");
            let ti = i < 30;
            t.push(ti);
            o.push(50.0 + if ti { 10.0 } else { 0.0 });
        }
        let treated = Mask::from_bools(&t);
        let df = DataFrame::builder()
            .cat("z", &z)
            .float("o", o)
            .build()
            .unwrap();
        (df, treated)
    }

    #[test]
    fn recovers_true_effect() {
        let (df, treated) = confounded_frame();
        let all = Mask::ones(df.n_rows());
        let est = estimate(&df, &all, &treated, "o", &["z".into()]).unwrap();
        assert!((est.cate - 10.0).abs() < 1e-9, "cate = {}", est.cate);
        assert_eq!(est.n_treated, 40);
        assert_eq!(est.n_control, 40);
    }

    #[test]
    fn agrees_with_linear_on_clean_design() {
        let (df, treated) = confounded_frame();
        let all = Mask::ones(df.n_rows());
        let s = estimate(&df, &all, &treated, "o", &["z".into()]).unwrap();
        let l = super::super::linear::estimate(&df, &all, &treated, "o", &["z".into()]).unwrap();
        assert!((s.cate - l.cate).abs() < 1e-6, "{} vs {}", s.cate, l.cate);
    }

    #[test]
    fn strata_without_positivity_are_skipped() {
        // Stratum "only" has no control rows at all → excluded.
        let z = [
            "a", "a", "a", "a", "a", "a", "a", "a", "a", "a", "a", "a", "only", "only", "only",
            "only", "only", "only",
        ];
        let t = vec![
            true, false, true, false, true, false, true, false, true, false, true, false, true,
            true, true, true, true, true,
        ];
        let o: Vec<f64> = t.iter().map(|&ti| if ti { 7.0 } else { 0.0 }).collect();
        let treated = Mask::from_bools(&t);
        let df = DataFrame::builder()
            .cat("z", &z)
            .float("o", o)
            .build()
            .unwrap();
        let all = Mask::ones(df.n_rows());
        let est = estimate(&df, &all, &treated, "o", &["z".into()]).unwrap();
        assert!((est.cate - 7.0).abs() < 1e-9);
        // Only stratum "a" contributes.
        assert_eq!(est.n_treated, 6);
        assert_eq!(est.n_control, 6);
    }

    #[test]
    fn numeric_covariates_are_binned() {
        // O = 3·T + age; T independent of age within bins by construction.
        let n = 240;
        let mut age = Vec::new();
        let mut t = Vec::new();
        let mut o = Vec::new();
        for i in 0..n {
            let a = (i / 10) as i64; // 24 distinct ages
            let ti = i % 2 == 0;
            age.push(a);
            t.push(ti);
            o.push(3.0 * ti as i64 as f64 + a as f64);
        }
        let treated = Mask::from_bools(&t);
        let df = DataFrame::builder()
            .int("age", age)
            .float("o", o)
            .build()
            .unwrap();
        let all = Mask::ones(n);
        let est = estimate(&df, &all, &treated, "o", &["age".into()]).unwrap();
        // Within each quantile bin the treated/control age distributions are
        // identical, so the bias of coarse binning vanishes here.
        assert!((est.cate - 3.0).abs() < 1e-9, "cate = {}", est.cate);
    }

    #[test]
    fn no_positivity_anywhere_errors() {
        // Every stratum fully treated or fully control.
        let z = ["a", "a", "a", "a", "a", "a", "b", "b", "b", "b", "b", "b"];
        let t = vec![
            true, true, true, true, true, true, false, false, false, false, false, false,
        ];
        let o = vec![1.0; 12];
        let treated = Mask::from_bools(&t);
        let df = DataFrame::builder()
            .cat("z", &z)
            .float("o", o)
            .build()
            .unwrap();
        let all = Mask::ones(12);
        assert!(estimate(&df, &all, &treated, "o", &["z".into()]).is_err());
    }

    #[test]
    fn empty_adjustment_is_difference_in_means() {
        let t = [
            true, true, true, true, true, false, false, false, false, false,
        ];
        let o = [5.0, 5.0, 5.0, 5.0, 5.0, 2.0, 2.0, 2.0, 2.0, 2.0];
        let treated = Mask::from_bools(&t);
        let df = DataFrame::builder().float("o", o.to_vec()).build().unwrap();
        let all = Mask::ones(10);
        let est = estimate(&df, &all, &treated, "o", &[]).unwrap();
        assert!((est.cate - 3.0).abs() < 1e-12);
        assert_eq!(est.p_value, 0.0); // deterministic outcome
    }

    #[test]
    fn binary_outcome_supported() {
        // Boolean outcome behaves as 0/1 (German Credit's credit score).
        let t = [
            true, true, true, true, true, true, false, false, false, false, false, false,
        ];
        let o = vec![
            true, true, true, true, true, false, false, false, false, false, false, true,
        ];
        let treated = Mask::from_bools(&t);
        let df = DataFrame::builder().bool("o", o).build().unwrap();
        let all = Mask::ones(12);
        let est = estimate(&df, &all, &treated, "o", &[]).unwrap();
        assert!((est.cate - (5.0 / 6.0 - 1.0 / 6.0)).abs() < 1e-9);
    }
}
