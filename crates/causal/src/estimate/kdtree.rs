//! Median-split, leaf-bucketed KD-tree for tie-inclusive k-NN matching.
//!
//! The tree indexes the *standardized* covariate design of one (subgroup,
//! adjustment-set) pair — see [`super::matching`] — and answers the only
//! query matching needs: "every opposite-arm unit at least as close as the
//! k-th nearest, ties included". Because matching's CATE must be
//! **bit-identical** whether it was computed by brute force or through the
//! tree, the query runs in two phases:
//!
//! 1. **k-th bound** — a classic best-first descent maintaining the `k`
//!    smallest accepted distances, pruning subtrees whose bounding-box
//!    distance cannot beat the current k-th. This yields the exact k-th
//!    smallest squared distance (a pure value, independent of traversal
//!    order).
//! 2. **tie collect** — a range query at [`tie_cutoff`]`(kth)` gathers
//!    *every* accepted point within the inflated cutoff. A single pruned
//!    pass could not do this: points tied with the k-th (or within the
//!    tolerance band above it) may hide in subtrees a plain k-NN descent
//!    already discarded.
//!
//! Collected ids are sorted ascending, so downstream accumulation visits
//! matches in pool order — exactly the order the brute-force path uses.
//! Both phases count visited nodes; the matching budget is expressed in
//! (modeled) units of this count.
//!
//! Arm filtering happens at query time through an `accept` predicate:
//! the tree itself is treatment-independent, which is what lets one index
//! serve every intervention of a pattern sweep.
//!
//! Coordinates are assumed finite (the standardizer maps non-finite and
//! zero-variance columns to 0.0); comparisons use `total_cmp` so the tree
//! and brute-force paths rank equal keys identically.

/// Maximum points per leaf bucket. Leaves are scanned linearly, so this
/// trades tree depth (pointer chasing) against per-leaf work; 32 keeps a
/// leaf's coordinates within a few cache lines.
pub const LEAF_SIZE: usize = 32;

/// Sentinel child index marking a leaf node.
const NONE: u32 = u32::MAX;

/// One tree node: a range of the id permutation plus child links.
struct Node {
    start: u32,
    end: u32,
    left: u32,
    right: u32,
}

/// A median-split KD-tree over `n` points of fixed dimension, holding a
/// permutation of point ids; point coordinates stay in the caller's flat
/// row-major buffer and are passed to each query.
pub struct KdTree {
    dim: usize,
    nodes: Vec<Node>,
    ids: Vec<u32>,
    /// Per node: `dim` minima then `dim` maxima of its bounding box.
    bounds: Vec<f64>,
}

impl std::fmt::Debug for KdTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KdTree")
            .field("dim", &self.dim)
            .field("points", &self.ids.len())
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

/// Squared Euclidean distance with terms accumulated in ascending
/// coordinate order — shared by the brute-force and tree paths so every
/// distance is computed by the exact same float sequence.
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Inflate the k-th smallest squared distance into the tie-inclusive
/// cutoff: a hair of relative and absolute slack so floating-point
/// near-ties land inside the matched set rather than outside it.
pub fn tie_cutoff(kth: f64) -> f64 {
    kth * (1.0 + 1e-9) + 1e-12
}

impl KdTree {
    /// Build over `points` (row-major, `dim` coordinates per point).
    /// Splits the widest bounding-box dimension at the median (ties in the
    /// split key broken by point id, so the tree is a pure function of the
    /// points); ranges of `LEAF_SIZE` or fewer points — or with zero
    /// spread in every dimension — become leaf buckets.
    ///
    /// # Panics
    ///
    /// Panics when `dim == 0` or `points.len()` is not a multiple of
    /// `dim`.
    pub fn build(points: &[f64], dim: usize) -> KdTree {
        assert!(dim > 0, "KdTree requires at least one dimension");
        assert_eq!(points.len() % dim, 0, "points must be n × dim");
        let n = points.len() / dim;
        let mut tree = KdTree {
            dim,
            nodes: Vec::with_capacity((2 * n / LEAF_SIZE).max(1)),
            ids: (0..n as u32).collect(),
            bounds: Vec::new(),
        };
        if n > 0 {
            tree.build_node(points, 0, n);
        }
        tree
    }

    /// Number of tree nodes (internal + leaves) — the unit the matching
    /// budget models.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn build_node(&mut self, points: &[f64], start: usize, end: usize) -> u32 {
        let dim = self.dim;
        let mut lo = vec![f64::INFINITY; dim];
        let mut hi = vec![f64::NEG_INFINITY; dim];
        for &id in &self.ids[start..end] {
            let p = &points[id as usize * dim..][..dim];
            for d in 0..dim {
                lo[d] = lo[d].min(p[d]);
                hi[d] = hi[d].max(p[d]);
            }
        }
        let node_idx = self.nodes.len() as u32;
        self.nodes.push(Node {
            start: start as u32,
            end: end as u32,
            left: NONE,
            right: NONE,
        });
        self.bounds.extend_from_slice(&lo);
        self.bounds.extend_from_slice(&hi);

        let mut split_dim = 0;
        let mut spread = 0.0f64;
        for d in 0..dim {
            let s = hi[d] - lo[d];
            if s > spread {
                spread = s;
                split_dim = d;
            }
        }
        if end - start > LEAF_SIZE && spread > 0.0 {
            let mid = (start + end) / 2;
            self.ids[start..end].select_nth_unstable_by(mid - start, |&a, &b| {
                let ca = points[a as usize * dim + split_dim];
                let cb = points[b as usize * dim + split_dim];
                ca.total_cmp(&cb).then(a.cmp(&b))
            });
            let left = self.build_node(points, start, mid);
            let right = self.build_node(points, mid, end);
            let node = &mut self.nodes[node_idx as usize];
            node.left = left;
            node.right = right;
        }
        node_idx
    }

    /// Minimum squared distance from `q` to the node's bounding box.
    fn min_dist2(&self, q: &[f64], node: u32) -> f64 {
        let b = &self.bounds[node as usize * 2 * self.dim..][..2 * self.dim];
        let (lo, hi) = b.split_at(self.dim);
        let mut acc = 0.0;
        for d in 0..self.dim {
            let v = q[d];
            let diff = if v < lo[d] {
                lo[d] - v
            } else if v > hi[d] {
                v - hi[d]
            } else {
                0.0
            };
            acc += diff * diff;
        }
        acc
    }

    /// Tie-inclusive k-NN: find the k-th smallest squared distance from
    /// `q` among points the `accept` predicate admits, then collect
    /// **every** accepted point within [`tie_cutoff`] of it into `out`,
    /// sorted ascending by id. Returns the number of tree nodes visited
    /// across both phases. With fewer than `k` accepted points, the
    /// farthest accepted distance plays the k-th's role (everything
    /// matches); with none, `out` stays empty.
    pub fn query_ties(
        &self,
        points: &[f64],
        q: &[f64],
        k: usize,
        accept: impl Fn(u32) -> bool + Copy,
        out: &mut Vec<u32>,
    ) -> u64 {
        out.clear();
        if self.nodes.is_empty() || k == 0 {
            return 0;
        }
        let mut visited = 0u64;
        let mut best: Vec<f64> = Vec::with_capacity(k);
        self.nearest(points, q, k, accept, 0, &mut best, &mut visited);
        let Some(&kth) = best.last() else {
            return visited;
        };
        let cutoff = tie_cutoff(kth);
        self.collect(points, q, cutoff, accept, 0, out, &mut visited);
        out.sort_unstable();
        visited
    }

    #[allow(clippy::too_many_arguments)]
    fn nearest(
        &self,
        points: &[f64],
        q: &[f64],
        k: usize,
        accept: impl Fn(u32) -> bool + Copy,
        node: u32,
        best: &mut Vec<f64>,
        visited: &mut u64,
    ) {
        *visited += 1;
        let nd = &self.nodes[node as usize];
        if nd.left == NONE {
            for &id in &self.ids[nd.start as usize..nd.end as usize] {
                if !accept(id) {
                    continue;
                }
                let d2 = dist2(q, &points[id as usize * self.dim..][..self.dim]);
                push_best(best, k, d2);
            }
            return;
        }
        let dl = self.min_dist2(q, nd.left);
        let dr = self.min_dist2(q, nd.right);
        let (near, d_near, far, d_far) = if dl <= dr {
            (nd.left, dl, nd.right, dr)
        } else {
            (nd.right, dr, nd.left, dl)
        };
        if best.len() < k || d_near.total_cmp(best.last().expect("non-empty")).is_lt() {
            self.nearest(points, q, k, accept, near, best, visited);
        }
        if best.len() < k || d_far.total_cmp(best.last().expect("non-empty")).is_lt() {
            self.nearest(points, q, k, accept, far, best, visited);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn collect(
        &self,
        points: &[f64],
        q: &[f64],
        cutoff: f64,
        accept: impl Fn(u32) -> bool + Copy,
        node: u32,
        out: &mut Vec<u32>,
        visited: &mut u64,
    ) {
        *visited += 1;
        let nd = &self.nodes[node as usize];
        if nd.left == NONE {
            for &id in &self.ids[nd.start as usize..nd.end as usize] {
                if !accept(id) {
                    continue;
                }
                let d2 = dist2(q, &points[id as usize * self.dim..][..self.dim]);
                if d2.total_cmp(&cutoff).is_le() {
                    out.push(id);
                }
            }
            return;
        }
        // A box's min distance lower-bounds every contained point's
        // distance, so pruning min > cutoff can never drop a match.
        if self.min_dist2(q, nd.left) <= cutoff {
            self.collect(points, q, cutoff, accept, nd.left, out, visited);
        }
        if self.min_dist2(q, nd.right) <= cutoff {
            self.collect(points, q, cutoff, accept, nd.right, out, visited);
        }
    }
}

/// Insert `d2` into the sorted best-k list: grow while under `k`,
/// otherwise replace the current maximum only on a strict improvement
/// (equal values never displace, matching selection semantics).
fn push_best(best: &mut Vec<f64>, k: usize, d2: f64) {
    if best.len() == k && d2.total_cmp(best.last().expect("k > 0")).is_ge() {
        return;
    }
    if best.len() == k {
        best.pop();
    }
    let pos = best.partition_point(|x| x.total_cmp(&d2).is_le());
    best.insert(pos, d2);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random coordinates (xorshift, no external RNG).
    fn cloud(n: usize, dim: usize, dup_every: usize) -> Vec<f64> {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 8.0 - 4.0
        };
        let mut pts = Vec::with_capacity(n * dim);
        for i in 0..n {
            if dup_every > 0 && i % dup_every == 0 && i >= dup_every {
                // Duplicate an earlier point to force exact distance ties.
                let src = (i - dup_every) * dim;
                for d in 0..dim {
                    let v = pts[src + d];
                    pts.push(v);
                }
            } else {
                for _ in 0..dim {
                    pts.push(next());
                }
            }
        }
        pts
    }

    fn brute_ties(
        points: &[f64],
        dim: usize,
        q: &[f64],
        k: usize,
        accept: impl Fn(u32) -> bool,
    ) -> Vec<u32> {
        let n = points.len() / dim;
        let mut d2s: Vec<(f64, u32)> = (0..n as u32)
            .filter(|&id| accept(id))
            .map(|id| (dist2(q, &points[id as usize * dim..][..dim]), id))
            .collect();
        if d2s.is_empty() {
            return Vec::new();
        }
        let kth_pos = k.min(d2s.len()) - 1;
        d2s.select_nth_unstable_by(kth_pos, |a, b| a.0.total_cmp(&b.0));
        let cutoff = tie_cutoff(d2s[kth_pos].0);
        let mut ids: Vec<u32> = d2s
            .iter()
            .filter(|(d, _)| d.total_cmp(&cutoff).is_le())
            .map(|&(_, id)| id)
            .collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn queries_match_brute_force_with_duplicates() {
        let dim = 3;
        let points = cloud(300, dim, 5);
        let tree = KdTree::build(&points, dim);
        let mut out = Vec::new();
        for qi in 0..300usize {
            let q = &points[qi * dim..][..dim];
            // Odd/even split stands in for treatment arms.
            let accept = |id: u32| id.is_multiple_of(2) != qi.is_multiple_of(2);
            let visited = tree.query_ties(&points, q, 4, accept, &mut out);
            assert!(visited > 0);
            assert_eq!(out, brute_ties(&points, dim, q, 4, accept), "query {qi}");
        }
    }

    #[test]
    fn fewer_accepted_than_k_matches_everything_accepted() {
        let dim = 2;
        let points = cloud(100, dim, 0);
        let tree = KdTree::build(&points, dim);
        let mut out = Vec::new();
        tree.query_ties(&points, &points[0..dim], 4, |id| id < 3, &mut out);
        assert_eq!(out, vec![0, 1, 2]);
        tree.query_ties(&points, &points[0..dim], 4, |_| false, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn coincident_cloud_stays_shallow_and_complete() {
        // All points identical: zero spread everywhere → a single leaf
        // (no infinite recursion), and every point ties for nearest.
        let dim = 2;
        let points: Vec<f64> = std::iter::repeat_n([1.5, -0.5], 200).flatten().collect();
        let tree = KdTree::build(&points, dim);
        assert_eq!(tree.n_nodes(), 1);
        let mut out = Vec::new();
        tree.query_ties(&points, &[1.5, -0.5], 4, |id| id >= 100, &mut out);
        assert_eq!(out, (100u32..200).collect::<Vec<_>>());
    }
}
