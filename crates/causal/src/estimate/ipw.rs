//! Inverse-propensity-weighting (IPW) CATE estimator.
//!
//! Fits a logistic-regression propensity model `P(T = 1 | Z)` by iteratively
//! reweighted least squares (IRLS, from scratch on our Cholesky solver),
//! then forms the Hájek (self-normalized) IPW contrast:
//!
//! `CATE = Σ_T w_i y_i / Σ_T w_i − Σ_C v_i y_i / Σ_C v_i`,
//! with `w_i = 1/p̂_i`, `v_i = 1/(1 − p̂_i)`.
//!
//! Propensities are clipped away from {0, 1} (overlap enforcement). This is
//! the third estimator ablation — DoWhy exposes the same trio (linear /
//! stratification / IPW) for backdoor adjustment.

use super::{kernel, normal_inference, Estimate, HotStats, MIN_ARM_SIZE};
use crate::error::{CausalError, Result};
use crate::linalg::solve_spd;
use faircap_table::{DataFrame, Mask};
use std::time::Instant;

/// Propensity clip bounds (positivity enforcement); shared with the AIPW
/// estimator so both enforce the same overlap region.
pub(crate) const CLIP: f64 = 0.01;
/// IRLS iteration cap; logistic fits on clean designs converge in < 10.
const MAX_IRLS_ITERS: usize = 25;

/// Estimate the CATE by inverse propensity weighting with automatic
/// worker selection. See module docs.
pub fn estimate(
    df: &DataFrame,
    group: &Mask,
    treated: &Mask,
    outcome: &str,
    adjustment: &[String],
) -> Result<Estimate> {
    let workers = kernel::auto_workers(group.count());
    estimate_with(
        df,
        group,
        treated,
        outcome,
        adjustment,
        workers,
        &mut HotStats::default(),
    )
}

/// IPW estimate over the columnar kernels, with an explicit worker count
/// and hot-path cost accounting.
pub fn estimate_with(
    df: &DataFrame,
    group: &Mask,
    treated: &Mask,
    outcome: &str,
    adjustment: &[String],
    workers: usize,
    stats: &mut HotStats,
) -> Result<Estimate> {
    let n = group.count();
    let n_treated = group.intersect_count(treated);
    let n_control = n - n_treated;
    if n_treated < MIN_ARM_SIZE || n_control < MIN_ARM_SIZE {
        return Err(CausalError::Estimation(format!(
            "insufficient overlap: {n_treated} treated / {n_control} control"
        )));
    }

    // Propensity design: [1, Z...]; with an empty adjustment set the model
    // degenerates to the marginal treatment rate (as it should).
    let t0 = Instant::now();
    let x = kernel::build_columns(df, adjustment, group, None, workers, &mut stats.tasks)?;
    let y = kernel::gather_outcome(df, outcome, group)?;
    let t = kernel::gather_indicator(group, treated);
    stats.build_ns += t0.elapsed().as_nanos() as u64;
    let propensities = logistic_fit(x.cols(), &t, workers, &mut stats.tasks)?;

    // Hájek-weighted means per arm, with clipped propensities.
    let mut sw_t = 0.0;
    let mut swy_t = 0.0;
    let mut sw_c = 0.0;
    let mut swy_c = 0.0;
    for i in 0..n {
        let p = propensities[i].clamp(CLIP, 1.0 - CLIP);
        if t[i] {
            let w = 1.0 / p;
            sw_t += w;
            swy_t += w * y[i];
        } else {
            let w = 1.0 / (1.0 - p);
            sw_c += w;
            swy_c += w * y[i];
        }
    }
    let mean_t = swy_t / sw_t;
    let mean_c = swy_c / sw_c;
    let cate = mean_t - mean_c;

    // Variance of the Hájek contrast via the weighted linearization:
    // Var(μ̂) ≈ Σ w_i²(y_i − μ̂)² / (Σ w_i)² per arm.
    let mut var_t = 0.0;
    let mut var_c = 0.0;
    for i in 0..n {
        let p = propensities[i].clamp(CLIP, 1.0 - CLIP);
        if t[i] {
            let w = 1.0 / p;
            var_t += w * w * (y[i] - mean_t) * (y[i] - mean_t);
        } else {
            let w = 1.0 / (1.0 - p);
            var_c += w * w * (y[i] - mean_c) * (y[i] - mean_c);
        }
    }
    let var = var_t / (sw_t * sw_t) + var_c / (sw_c * sw_c);
    let (std_err, t_stat, p_value) = normal_inference(cate, var);
    Ok(Estimate {
        cate,
        std_err,
        t_stat,
        p_value,
        n_treated,
        n_control,
    })
}

/// Logistic regression by IRLS over column-major design columns; returns
/// fitted probabilities per row. Each iteration's `XᵀWX` and `Xᵀ(t − p)`
/// reductions run through the fused blocked kernel
/// ([`kernel::weighted_gram_score`]), fanning out across `workers`.
/// Shared with the AIPW estimator, which augments the same propensity
/// model with per-arm outcome regressions.
pub(crate) fn logistic_fit(
    cols: &[Vec<f64>],
    t: &[bool],
    workers: usize,
    tasks: &mut u64,
) -> Result<Vec<f64>> {
    let n = cols.first().map_or(0, Vec::len);
    let k = cols.len();
    let mut beta = vec![0.0; k];
    let mut probs: Vec<f64> = vec![0.5; n];
    let mut w = vec![0.0; n];
    let mut resid = vec![0.0; n];
    for _ in 0..MAX_IRLS_ITERS {
        for r in 0..n {
            let p = probs[r];
            w[r] = (p * (1.0 - p)).max(1e-6_f64);
            resid[r] = (t[r] as u8 as f64) - p;
        }
        let (gram, score) = kernel::weighted_gram_score(cols, &w, &resid, workers, tasks);
        let delta = solve_spd(&gram, &score)?;
        let step: f64 = delta.iter().map(|d| d * d).sum::<f64>().sqrt();
        for (b, d) in beta.iter_mut().zip(&delta) {
            *b += d;
        }
        // Refresh probabilities.
        let eta = kernel::mat_vec_columns(cols, &beta);
        for (p, e) in probs.iter_mut().zip(&eta) {
            *p = 1.0 / (1.0 + (-e).exp());
        }
        if step < 1e-8 {
            break;
        }
    }
    Ok(probs)
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use faircap_table::DataFrame;

    /// Same confounded fixture as the other estimators:
    /// z ∈ {low, high}; treatment more likely when z=high; O = 10·T + 50·z.
    fn confounded_frame() -> (DataFrame, Mask) {
        let mut z = Vec::new();
        let mut t = Vec::new();
        let mut o = Vec::new();
        for i in 0..40 {
            z.push("low");
            let ti = i < 10;
            t.push(ti);
            o.push(if ti { 10.0 } else { 0.0 });
        }
        for i in 0..40 {
            z.push("high");
            let ti = i < 30;
            t.push(ti);
            o.push(50.0 + if ti { 10.0 } else { 0.0 });
        }
        let treated = Mask::from_bools(&t);
        let df = DataFrame::builder()
            .cat("z", &z)
            .float("o", o)
            .build()
            .unwrap();
        (df, treated)
    }

    #[test]
    fn recovers_true_effect_under_confounding() {
        let (df, treated) = confounded_frame();
        let all = Mask::ones(df.n_rows());
        let est = estimate(&df, &all, &treated, "o", &["z".into()]).unwrap();
        assert!((est.cate - 10.0).abs() < 1e-6, "cate = {}", est.cate);
        assert_eq!(est.n_treated, 40);
        assert_eq!(est.n_control, 40);
    }

    #[test]
    fn empty_adjustment_is_difference_in_means() {
        let (df, treated) = confounded_frame();
        let all = Mask::ones(df.n_rows());
        let est = estimate(&df, &all, &treated, "o", &[]).unwrap();
        // Weights are uniform when the propensity model is marginal:
        // E[O|T=1] − E[O|T=0] = 47.5 − 12.5 = 35 (the biased naive value).
        assert!((est.cate - 35.0).abs() < 1e-6, "cate = {}", est.cate);
    }

    #[test]
    fn logistic_fit_recovers_rates() {
        // Propensity differs by group: 25% vs 75%.
        let n = 400;
        let mut indicator = vec![0.0f64; n];
        let mut t = Vec::with_capacity(n);
        for i in 0..n {
            let g = i % 2 == 0;
            indicator[i] = g as u8 as f64;
            // deterministic pattern with exact rates: within each parity
            // class, (i/2) cycles 0,1,2,3 → 75% treated in-group, 25% out.
            t.push(if g {
                (i / 2) % 4 != 0
            } else {
                (i / 2) % 4 == 0
            });
        }
        let cols = vec![vec![1.0; n], indicator];
        let probs = logistic_fit(&cols, &t, 1, &mut 0).unwrap();
        let mean_g: f64 =
            (0..n).filter(|i| i % 2 == 0).map(|i| probs[i]).sum::<f64>() / (n / 2) as f64;
        let mean_ng: f64 =
            (0..n).filter(|i| i % 2 == 1).map(|i| probs[i]).sum::<f64>() / (n / 2) as f64;
        assert!((mean_g - 0.75).abs() < 0.02, "group rate {mean_g}");
        assert!((mean_ng - 0.25).abs() < 0.02, "non-group rate {mean_ng}");
    }

    #[test]
    fn agrees_with_linear_on_clean_design() {
        let (df, treated) = confounded_frame();
        let all = Mask::ones(df.n_rows());
        let ipw = estimate(&df, &all, &treated, "o", &["z".into()]).unwrap();
        let lin = super::super::linear::estimate(&df, &all, &treated, "o", &["z".into()]).unwrap();
        assert!(
            (ipw.cate - lin.cate).abs() < 1e-6,
            "ipw {} vs linear {}",
            ipw.cate,
            lin.cate
        );
    }

    #[test]
    fn insufficient_overlap_rejected() {
        let df = DataFrame::builder()
            .float("o", vec![1.0; 20])
            .build()
            .unwrap();
        let all = Mask::ones(20);
        let treated = Mask::from_indices(20, &[0, 1]);
        assert!(estimate(&df, &all, &treated, "o", &[]).is_err());
    }
}
