//! Shared design-matrix construction for the regression-based estimators.

use crate::error::{CausalError, Result};
use crate::linalg::Matrix;
use faircap_table::{Column, DataFrame, Mask};

/// One adjustment covariate, encoded for a design matrix.
pub(crate) enum CovariateBlock {
    /// Numeric column used directly (single design column).
    Numeric { values: Vec<f64> },
    /// Categorical column one-hot encoded with the first observed level
    /// dropped (reference level), `width = levels − 1`.
    OneHot { codes: Vec<u32>, levels: usize },
}

impl CovariateBlock {
    /// Encode a column for the rows of `group`. Categorical levels are
    /// re-coded to the levels *observed inside the group*, so unused
    /// dictionary entries don't create all-zero columns.
    pub(crate) fn build(df: &DataFrame, name: &str, group: &Mask) -> Result<CovariateBlock> {
        let col = df.column(name)?;
        match col {
            Column::Int(_) | Column::Float(_) | Column::Bool(_) => {
                let values = (0..df.n_rows())
                    .map(|i| col.get_f64(i).unwrap_or(0.0))
                    .collect();
                Ok(CovariateBlock::Numeric { values })
            }
            Column::Cat(c) => {
                let mut remap = vec![u32::MAX; c.cardinality()];
                let mut levels = 0u32;
                for i in group.iter_ones() {
                    let code = c.codes()[i] as usize;
                    if remap[code] == u32::MAX {
                        remap[code] = levels;
                        levels += 1;
                    }
                }
                let codes = c.codes().iter().map(|&cd| remap[cd as usize]).collect();
                Ok(CovariateBlock::OneHot {
                    codes,
                    levels: levels as usize,
                })
            }
        }
    }

    /// Number of design columns this covariate contributes.
    pub(crate) fn width(&self) -> usize {
        match self {
            CovariateBlock::Numeric { .. } => 1,
            CovariateBlock::OneHot { levels, .. } => levels.saturating_sub(1),
        }
    }

    /// Write the covariate's design values for `row` into `out`
    /// (pre-zeroed, `out.len() == self.width()`).
    pub(crate) fn fill(&self, row: usize, out: &mut [f64]) {
        match self {
            CovariateBlock::Numeric { values } => out[0] = values[row],
            CovariateBlock::OneHot { codes, .. } => {
                let code = codes[row];
                // level 0 is the dropped reference; levels 1.. map to columns.
                if code != u32::MAX && code > 0 {
                    out[code as usize - 1] = 1.0;
                }
            }
        }
    }
}

/// Build the full covariate design for `adjustment` over `group` rows:
/// returns the blocks and the total design width (excluding intercept and
/// treatment columns).
pub(crate) fn build_blocks(
    df: &DataFrame,
    adjustment: &[String],
    group: &Mask,
) -> Result<(Vec<CovariateBlock>, usize)> {
    let mut blocks = Vec::with_capacity(adjustment.len());
    for name in adjustment {
        blocks.push(CovariateBlock::build(df, name, group)?);
    }
    let width = blocks.iter().map(|b| b.width()).sum();
    Ok((blocks, width))
}

/// Build the `[1, Z...]` design matrix over `rows` (the group's indices in
/// order): intercept in column 0, covariate blocks from column 1 — the
/// layout shared by the propensity model, the per-arm outcome regressions,
/// and the matching metric.
pub(crate) fn build_intercept_design(
    df: &DataFrame,
    adjustment: &[String],
    group: &Mask,
    rows: &[usize],
) -> Result<Matrix> {
    let (blocks, z_width) = build_blocks(df, adjustment, group)?;
    let mut x = Matrix::zeros(rows.len(), 1 + z_width);
    for (i, &row) in rows.iter().enumerate() {
        let xr = x.row_mut(i);
        xr[0] = 1.0;
        let mut offset = 1;
        for b in &blocks {
            b.fill(row, &mut xr[offset..offset + b.width()]);
            offset += b.width();
        }
    }
    Ok(x)
}

/// Outcome values over `rows`, or a typed error naming the column when any
/// cell is non-numeric.
pub(crate) fn outcome_values(df: &DataFrame, outcome: &str, rows: &[usize]) -> Result<Vec<f64>> {
    let col = df.column(outcome)?;
    rows.iter()
        .map(|&r| {
            col.get_f64(r).ok_or_else(|| {
                CausalError::Estimation(format!("outcome `{outcome}` is not numeric"))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use faircap_table::DataFrame;

    #[test]
    fn numeric_block_passthrough() {
        let df = DataFrame::builder()
            .int("x", vec![5, 7, 9])
            .build()
            .unwrap();
        let b = CovariateBlock::build(&df, "x", &Mask::ones(3)).unwrap();
        assert_eq!(b.width(), 1);
        let mut out = [0.0];
        b.fill(1, &mut out);
        assert_eq!(out[0], 7.0);
    }

    #[test]
    fn onehot_drops_reference_level() {
        let df = DataFrame::builder()
            .cat("c", &["a", "b", "c", "a"])
            .build()
            .unwrap();
        let b = CovariateBlock::build(&df, "c", &Mask::ones(4)).unwrap();
        assert_eq!(b.width(), 2); // 3 levels − 1 reference
        let mut out = [0.0, 0.0];
        b.fill(0, &mut out); // "a" = reference
        assert_eq!(out, [0.0, 0.0]);
        out = [0.0, 0.0];
        b.fill(1, &mut out); // "b" = level 1
        assert_eq!(out, [1.0, 0.0]);
        out = [0.0, 0.0];
        b.fill(2, &mut out); // "c" = level 2
        assert_eq!(out, [0.0, 1.0]);
    }

    #[test]
    fn onehot_recoded_within_group() {
        // "z" never appears inside the group → contributes no columns.
        let df = DataFrame::builder()
            .cat("c", &["z", "a", "b", "a"])
            .build()
            .unwrap();
        let group = Mask::from_indices(4, &[1, 2, 3]);
        let b = CovariateBlock::build(&df, "c", &group).unwrap();
        assert_eq!(b.width(), 1); // {a, b} observed → 1 column
    }

    #[test]
    fn build_blocks_totals_width() {
        let df = DataFrame::builder()
            .cat("c", &["a", "b", "a"])
            .int("x", vec![1, 2, 3])
            .build()
            .unwrap();
        let (blocks, width) = build_blocks(&df, &["c".into(), "x".into()], &Mask::ones(3)).unwrap();
        assert_eq!(blocks.len(), 2);
        assert_eq!(width, 2); // (2−1) + 1
    }
}
