//! k-nearest-neighbor covariate-matching CATE estimator.
//!
//! Abadie–Imbens-style matching with regression bias adjustment, run on the
//! same encoded design the regression estimators use (the crate's shared
//! `design`/`kernel` modules): categorical covariates one-hot encoded,
//! numeric covariates standardized to unit variance within the subgroup so
//! no single covariate dominates the Euclidean metric.
//!
//! Every unit is matched (with replacement, ties included) to its
//! [`K_NEIGHBORS`] nearest neighbors in the *opposite* arm; the missing
//! potential outcome is imputed as the neighbors' mean outcome plus the
//! bias-adjustment term `μ̂(z_i) − μ̂(z_j)`, where `μ̂` is an OLS outcome
//! regression fit on the opposite arm (Abadie & Imbens 2011). Including
//! distance ties makes the estimator deterministic and means that on
//! *exactly matched* covariates it reproduces exact stratification — a
//! property the integration tests assert against
//! [`stratified`](super::stratified).
//!
//! The reported variance is the Abadie–Imbens (2006) estimator with the
//! **match-reuse correction**: on top of the between-unit variance of the
//! matched contrasts, each unit `i` contributes an extra
//! `(K_i² + K_i)·σ̂²_{arm(i)}` term, where `K_i` is the (tie-weighted)
//! number of times `i` served as a match for opposite-arm units and
//! `σ̂²_arm` is the within-arm residual variance of the bias-adjustment
//! regression.
//!
//! # The hot path
//!
//! Neighbor search runs through a [`MatchIndex`]: the standardized design
//! plus a median-split [`KdTree`] over it. The index depends only on the
//! (subgroup, adjustment-set) pair — arm membership is applied as a query
//! filter — so the [`CateEngine`](crate::cate::CateEngine) caches and
//! reuses one index across every intervention of a pattern sweep. Queries
//! are tie-inclusive two-phase lookups ([`KdTree::query_ties`]) that
//! reproduce the brute-force matched sets *exactly*; the brute path (kept
//! for tiny arms and covariate-free designs, see [`MatchStrategy`]) and
//! the tree path produce **bit-identical** CATEs, property-tested in
//! `tests/prop_kernels.rs`. Tree queries are additionally memoized per
//! distinct (point bit-pattern, arm): on categorical designs whole
//! covariate cells share one search result, collapsing thousands of
//! queries into a handful. Query batches fan out as [`crate::exec`] task
//! units over a worker-count-independent partition, so parallel estimates
//! are bit-identical to serial ones too.
//!
//! The complexity budget ([`DEFAULT_MATCHING_BUDGET`], overridable via
//! `FAIRCAP_MATCHING_BUDGET`) is expressed in the index's work units —
//! estimated tree-node visits under the post-index cost model
//! ([`estimated_work`]), or raw pair distances when the brute path would
//! run — and refuses subgroups that would still grind, naming scalable
//! alternatives in the typed
//! [`CausalError::EstimatorBudget`].

use super::kdtree::{self, KdTree, LEAF_SIZE};
use super::{aipw, design, kernel, normal_inference, Estimate, HotStats, MIN_ARM_SIZE};
use crate::error::{CausalError, Result};
use faircap_table::{DataFrame, Mask};
use std::time::Instant;

/// Number of opposite-arm neighbors matched per unit (before tie
/// expansion). Four is the usual bias/variance sweet spot for k-NN
/// matching; ties at the k-th distance are all included.
pub const K_NEIGHBORS: usize = 4;

/// Default complexity budget in work units: estimated KD-tree node visits
/// for indexed estimates ([`estimated_work`]), raw `n_t · n_c` pair
/// distances when the brute-force path would run (tiny arms or a
/// covariate-free design). Under the post-index cost model a 10⁶-row
/// subgroup estimates in ~10⁸ units, so the default admits paper-scale
/// subgroups while still refusing degenerate covariate-free sweeps that
/// would grind quadratically. Override per process with the
/// `FAIRCAP_MATCHING_BUDGET` environment variable (`0` disables the
/// guard).
pub const DEFAULT_MATCHING_BUDGET: u64 = 200_000_000;

/// Smallest arm size that justifies tree-indexed queries under
/// [`MatchStrategy::Auto`]; at or below it the brute-force scan is faster
/// than tree traversal overhead.
pub const BRUTE_ARM_MAX: usize = 128;

/// Fixed number of query partitions per estimate. The partition is a
/// constant (never derived from the worker count), so the fold order of
/// the per-partition match-weight accumulators — and therefore the CATE's
/// variance — is bit-identical no matter how many workers ran.
const MATCH_PARTS: usize = 8;

/// The effective work budget: `FAIRCAP_MATCHING_BUDGET` when set to a
/// valid unit count (`0` disables the guard), otherwise
/// [`DEFAULT_MATCHING_BUDGET`].
pub fn matching_budget() -> u64 {
    match std::env::var("FAIRCAP_MATCHING_BUDGET") {
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(0) => u64::MAX,
            Ok(n) => n,
            Err(_) => DEFAULT_MATCHING_BUDGET,
        },
        Err(_) => DEFAULT_MATCHING_BUDGET,
    }
}

/// A-priori cost model for one estimate, in budget work units.
///
/// Without a tree the brute path evaluates every `n_t · n_c` pair
/// distance. With one, each of the `n` queries descends the median-split
/// tree twice (k-th bound phase and tie-collect phase, ~`log₂ pool`
/// internal nodes each), touches `K_NEIGHBORS` candidates for the bound,
/// and scans on the order of two [`LEAF_SIZE`] buckets — the model the
/// budget refusal reports, deliberately a-priori (a function of arm sizes
/// only) so refusal never depends on data values. Actual visited nodes
/// are recorded on [`HotStats::tree_visits`].
pub fn estimated_work(n_treated: u64, n_control: u64, tree: bool) -> u64 {
    if !tree {
        return n_treated.saturating_mul(n_control);
    }
    let per_query = |pool: u64| -> u64 {
        let log2 = (u64::BITS - pool.max(2).leading_zeros()) as u64;
        2 * log2 + K_NEIGHBORS as u64 + 2 * LEAF_SIZE as u64
    };
    n_treated
        .saturating_mul(per_query(n_control))
        .saturating_add(n_control.saturating_mul(per_query(n_treated)))
}

/// Which neighbor-search path an estimate uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchStrategy {
    /// Tree-indexed when the design has covariates and both arms exceed
    /// [`BRUTE_ARM_MAX`]; brute-force otherwise.
    #[default]
    Auto,
    /// Always scan every opposite-arm pair.
    Brute,
    /// Always query the KD-tree (falls back to brute only for
    /// covariate-free designs, which have no tree). The property tests
    /// force both paths and compare CATEs by bits.
    Tree,
}

/// The reusable matching index of one (subgroup, adjustment-set) pair:
/// outcome values, the standardized `[1, Z…]` design (column-major), the
/// same covariates as row-major points, and the KD-tree over them.
///
/// Deliberately treatment-*independent* — arm membership is a query-time
/// filter — so one index serves every intervention of a pattern sweep;
/// the engine caches these per (subgroup fingerprint, adjustment set).
#[derive(Debug)]
pub struct MatchIndex {
    y: Vec<f64>,
    design: kernel::ColumnDesign,
    points: Vec<f64>,
    dim: usize,
    tree: Option<KdTree>,
}

impl MatchIndex {
    /// Build the index: fused columnar design assembly, in-place
    /// standardization (constant columns carry no matching information
    /// and are zeroed), transpose to row-major points, KD-tree
    /// construction. Assembly time lands in [`HotStats::build_ns`], tree
    /// construction in [`HotStats::index_ns`].
    pub fn build(
        df: &DataFrame,
        group: &Mask,
        outcome: &str,
        adjustment: &[String],
        workers: usize,
        stats: &mut HotStats,
    ) -> Result<MatchIndex> {
        let t0 = Instant::now();
        let mut design =
            kernel::build_columns(df, adjustment, group, None, workers, &mut stats.tasks)?;
        let y = kernel::gather_outcome(df, outcome, group)?;
        let n = design.n();
        for col in &mut design.cols_mut()[1..] {
            let mean = col.iter().sum::<f64>() / n as f64;
            let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
            let scale = if var > 1e-24 { 1.0 / var.sqrt() } else { 0.0 };
            for v in col.iter_mut() {
                *v = (*v - mean) * scale;
            }
        }
        stats.build_ns += t0.elapsed().as_nanos() as u64;

        let t1 = Instant::now();
        let dim = design.k() - 1;
        let mut points = vec![0.0f64; n * dim];
        for (c, col) in design.cols()[1..].iter().enumerate() {
            for (r, &v) in col.iter().enumerate() {
                points[r * dim + c] = v;
            }
        }
        let tree = if dim > 0 && n > 0 {
            Some(KdTree::build(&points, dim))
        } else {
            None
        };
        stats.index_ns += t1.elapsed().as_nanos() as u64;
        Ok(MatchIndex {
            y,
            design,
            points,
            dim,
            tree,
        })
    }

    /// Number of (group-dense) units indexed.
    pub fn n(&self) -> usize {
        self.design.n()
    }

    /// Covariate dimensionality of the matching metric (design width
    /// minus the intercept).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Whether a KD-tree was built (covariate-free designs have none).
    pub fn has_tree(&self) -> bool {
        self.tree.is_some()
    }
}

/// Per-call knobs of [`estimate_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct MatchParams<'a> {
    /// A prebuilt index for this (subgroup, adjustment-set); `None`
    /// builds one for the call.
    pub index: Option<&'a MatchIndex>,
    /// Neighbor-search path selection.
    pub strategy: MatchStrategy,
    /// Worker threads for within-estimate fan-out (`0`/`1` = serial).
    pub workers: usize,
}

/// Estimate the CATE by k-NN covariate matching with bias adjustment,
/// with automatic path selection and a throwaway index. See module docs.
pub fn estimate(
    df: &DataFrame,
    group: &Mask,
    treated: &Mask,
    outcome: &str,
    adjustment: &[String],
) -> Result<Estimate> {
    let params = MatchParams {
        workers: kernel::auto_workers(group.count()),
        ..MatchParams::default()
    };
    estimate_with(
        df,
        group,
        treated,
        outcome,
        adjustment,
        &params,
        &mut HotStats::default(),
    )
}

/// Full-control matching estimate: explicit index reuse, search strategy,
/// and worker count, with hot-path cost accounting on `stats`.
///
/// The result is a pure function of the data — bit-identical across
/// strategies (brute vs. tree), worker counts, and index reuse vs.
/// rebuild.
pub fn estimate_with(
    df: &DataFrame,
    group: &Mask,
    treated: &Mask,
    outcome: &str,
    adjustment: &[String],
    params: &MatchParams<'_>,
    stats: &mut HotStats,
) -> Result<Estimate> {
    let n = group.count();
    let n_treated = group.intersect_count(treated);
    let n_control = n - n_treated;
    if n_treated < MIN_ARM_SIZE || n_control < MIN_ARM_SIZE {
        return Err(CausalError::Estimation(format!(
            "insufficient overlap: {n_treated} treated / {n_control} control"
        )));
    }

    // Path decision and budget refusal happen before any heavy work: with
    // a prebuilt index the width is known; otherwise a cheap block scan
    // determines it without assembling the design.
    let dim = match params.index {
        Some(idx) => idx.dim(),
        None => design::build_blocks(df, adjustment, group)?.1,
    };
    let use_tree = match params.strategy {
        MatchStrategy::Brute => false,
        MatchStrategy::Tree => dim > 0,
        MatchStrategy::Auto => dim > 0 && n_treated.min(n_control) > BRUTE_ARM_MAX,
    };
    let work = estimated_work(n_treated as u64, n_control as u64, use_tree);
    let budget = matching_budget();
    if work > budget {
        return Err(CausalError::EstimatorBudget {
            estimator: "matching",
            work,
            budget,
            unit: if use_tree {
                "estimated KD-tree node visits"
            } else {
                "brute-force pair distances (arms too small or covariate-free, so the tree index cannot help)"
            },
        });
    }

    let owned;
    let idx = match params.index {
        Some(idx) => idx,
        None => {
            owned = MatchIndex::build(df, group, outcome, adjustment, params.workers, stats)?;
            &owned
        }
    };
    debug_assert_eq!(idx.n(), n, "index must cover the subgroup");

    let t = kernel::gather_indicator(group, treated);

    // Bias-adjustment regressions, one per arm, on the standardized
    // design; predictions materialized once (ascending-column dot order).
    let beta_t = aipw::fit_arm(
        idx.design.cols(),
        &idx.y,
        &t,
        true,
        params.workers,
        &mut stats.tasks,
    )?;
    let beta_c = aipw::fit_arm(
        idx.design.cols(),
        &idx.y,
        &t,
        false,
        params.workers,
        &mut stats.tasks,
    )?;
    let pred_t = kernel::mat_vec_columns(idx.design.cols(), &beta_t);
    let pred_c = kernel::mat_vec_columns(idx.design.cols(), &beta_c);

    let treated_ids: Vec<u32> = (0..n as u32).filter(|&i| t[i as usize]).collect();
    let control_ids: Vec<u32> = (0..n as u32).filter(|&i| !t[i as usize]).collect();

    // Distinct-point ids for tree-query memoization. On tie-heavy
    // (categorical) designs thousands of units occupy one covariate cell,
    // and the matched set is a pure function of (query point, own arm) —
    // so each part runs the tree search once per distinct (cell, arm)
    // it encounters and replays the cached set. Cells are keyed on exact
    // f64 bit patterns, so the reuse is bit-identical by construction;
    // on continuous designs every cell is a singleton and the memo is one
    // wasted hash probe per query.
    let cell_of: Vec<u32> = if use_tree {
        let mut ids: std::collections::HashMap<Vec<u64>, u32> = std::collections::HashMap::new();
        (0..n)
            .map(|i| {
                let bits: Vec<u64> = idx.points[i * idx.dim..][..idx.dim]
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                let next = ids.len() as u32;
                *ids.entry(bits).or_insert(next)
            })
            .collect()
    } else {
        Vec::new()
    };

    // Per-unit matched contrast τ_i = ŷ_i(1) − ŷ_i(0), one potential
    // outcome observed and the other imputed from matched neighbors.
    // `weight[j]` accumulates K_j: how often unit j served as a match,
    // each use weighted 1/m by the match count m of the unit it imputed
    // (so Σ_j K_j = n and the reuse correction below sees exactly the
    // estimator's implicit weights). Queries run over the fixed
    // MATCH_PARTS partition; each part accumulates its units in ascending
    // order and parts fold in partition order, independent of workers.
    let part_len = n.div_ceil(MATCH_PARTS).max(1);
    let n_parts = n.div_ceil(part_len);
    let parts = kernel::fan_out(n_parts, params.workers, &mut stats.tasks, |p| {
        let start = p * part_len;
        let end = ((p + 1) * part_len).min(n);
        let mut tau_part = Vec::with_capacity(end - start);
        let mut weight = vec![0.0f64; n];
        let mut visited = 0u64;
        let mut matched: Vec<u32> = Vec::new();
        let mut d2s: Vec<f64> = Vec::new();
        let mut sel: Vec<f64> = Vec::new();
        let mut memo: std::collections::HashMap<(u32, bool), Vec<u32>> =
            std::collections::HashMap::new();
        for i in start..end {
            let (pool, pred) = if t[i] {
                (&control_ids, &pred_c)
            } else {
                (&treated_ids, &pred_t)
            };
            let q = &idx.points[i * idx.dim..][..idx.dim];
            if use_tree {
                let own_arm = t[i];
                if let Some(cached) = memo.get(&(cell_of[i], own_arm)) {
                    matched.clear();
                    matched.extend_from_slice(cached);
                } else {
                    let tree = idx.tree.as_ref().expect("use_tree implies a tree");
                    visited += tree.query_ties(
                        &idx.points,
                        q,
                        K_NEIGHBORS,
                        |j| t[j as usize] != own_arm,
                        &mut matched,
                    );
                    memo.insert((cell_of[i], own_arm), matched.clone());
                }
            } else {
                brute_ties(
                    &idx.points,
                    idx.dim,
                    pool,
                    q,
                    &mut d2s,
                    &mut sel,
                    &mut matched,
                );
            }
            let m = matched.len();
            let mut acc = 0.0;
            let pred_i = pred[i];
            for &j in &matched {
                let j = j as usize;
                acc += idx.y[j] + pred_i - pred[j];
                weight[j] += 1.0 / m as f64;
            }
            let imputed = acc / m as f64;
            tau_part.push(if t[i] {
                idx.y[i] - imputed
            } else {
                imputed - idx.y[i]
            });
        }
        (tau_part, weight, visited)
    });

    let mut tau = Vec::with_capacity(n);
    let mut match_weight = vec![0.0f64; n];
    for (tau_part, weight, visited) in &parts {
        tau.extend_from_slice(tau_part);
        for (acc, w) in match_weight.iter_mut().zip(weight) {
            *acc += w;
        }
        stats.tree_visits += visited;
    }

    let cate = tau.iter().sum::<f64>() / n as f64;
    let var_tau =
        tau.iter().map(|v| (v - cate) * (v - cate)).sum::<f64>() / (n as f64 - 1.0).max(1.0);

    // Abadie–Imbens reuse correction: within-arm residual variances of the
    // bias-adjustment regressions proxy the conditional outcome variance
    // σ̂²(z, arm), and each unit adds (K_i² + K_i)·σ̂²_arm(i) — the reuse
    // variance a unit matched K_i times injects into the estimator.
    let resid_var = |pred: &[f64], arm: bool| -> f64 {
        let p = idx.design.k() as f64;
        let (mut ss, mut m) = (0.0, 0usize);
        for i in 0..n {
            if t[i] == arm {
                let r = idx.y[i] - pred[i];
                ss += r * r;
                m += 1;
            }
        }
        ss / (m as f64 - p).max(1.0)
    };
    let (s2_t, s2_c) = (resid_var(&pred_t, true), resid_var(&pred_c, false));
    let reuse: f64 = (0..n)
        .map(|i| {
            let k = match_weight[i];
            (k * k + k) * if t[i] { s2_t } else { s2_c }
        })
        .sum();
    let var = var_tau / n as f64 + reuse / (n as f64 * n as f64);
    let (std_err, t_stat, p_value) = normal_inference(cate, var);
    Ok(Estimate {
        cate,
        std_err,
        t_stat,
        p_value,
        n_treated,
        n_control,
    })
}

/// Brute-force tie-inclusive matched set: the canonical algorithm the
/// tree reproduces. Distances to every pool unit (ascending pool order,
/// shared [`kdtree::dist2`]), exact k-th smallest by selection, the
/// [`kdtree::tie_cutoff`] band, members collected in ascending id order.
fn brute_ties(
    points: &[f64],
    dim: usize,
    pool: &[u32],
    q: &[f64],
    d2s: &mut Vec<f64>,
    sel: &mut Vec<f64>,
    out: &mut Vec<u32>,
) {
    d2s.clear();
    for &j in pool {
        d2s.push(kdtree::dist2(q, &points[j as usize * dim..][..dim]));
    }
    let kth_pos = K_NEIGHBORS.min(d2s.len()) - 1;
    sel.clear();
    sel.extend_from_slice(d2s);
    sel.select_nth_unstable_by(kth_pos, f64::total_cmp);
    let cutoff = kdtree::tie_cutoff(sel[kth_pos]);
    out.clear();
    for (&j, d2) in pool.iter().zip(d2s.iter()) {
        if d2.total_cmp(&cutoff).is_le() {
            out.push(j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faircap_table::DataFrame;

    /// Same confounded fixture as the other estimators:
    /// z ∈ {low, high}; treatment more likely when z=high; O = 10·T + 50·z.
    fn confounded_frame() -> (DataFrame, Mask) {
        let mut z = Vec::new();
        let mut t = Vec::new();
        let mut o = Vec::new();
        for i in 0..40 {
            z.push("low");
            let ti = i < 10;
            t.push(ti);
            o.push(if ti { 10.0 } else { 0.0 });
        }
        for i in 0..40 {
            z.push("high");
            let ti = i < 30;
            t.push(ti);
            o.push(50.0 + if ti { 10.0 } else { 0.0 });
        }
        let treated = Mask::from_bools(&t);
        let df = DataFrame::builder()
            .cat("z", &z)
            .float("o", o)
            .build()
            .unwrap();
        (df, treated)
    }

    #[test]
    fn recovers_true_effect_under_confounding() {
        let (df, treated) = confounded_frame();
        let all = Mask::ones(df.n_rows());
        let est = estimate(&df, &all, &treated, "o", &["z".into()]).unwrap();
        assert!((est.cate - 10.0).abs() < 1e-9, "cate = {}", est.cate);
        assert_eq!(est.n_treated, 40);
        assert_eq!(est.n_control, 40);
    }

    #[test]
    fn exact_matches_reproduce_stratification() {
        let (df, treated) = confounded_frame();
        let all = Mask::ones(df.n_rows());
        let m = estimate(&df, &all, &treated, "o", &["z".into()]).unwrap();
        let s =
            super::super::stratified::estimate(&df, &all, &treated, "o", &["z".into()]).unwrap();
        assert!(
            (m.cate - s.cate).abs() < 1e-9,
            "matching {} vs stratified {}",
            m.cate,
            s.cate
        );
    }

    #[test]
    fn empty_adjustment_is_difference_in_means() {
        let (df, treated) = confounded_frame();
        let all = Mask::ones(df.n_rows());
        let est = estimate(&df, &all, &treated, "o", &[]).unwrap();
        // Zero covariates → every opposite-arm unit ties at distance 0 →
        // imputation by the opposite arm mean: 47.5 − 12.5 = 35.
        assert!((est.cate - 35.0).abs() < 1e-9, "cate = {}", est.cate);
    }

    #[test]
    fn bias_adjustment_corrects_inexact_matches() {
        // Controls sit at z = i, treated at z = i + 0.4; O = 2·z + 5·T.
        // Raw nearest-neighbor imputation is off by 2·0.4 per match; the
        // linear bias adjustment removes it exactly.
        let mut z = Vec::new();
        let mut t = Vec::new();
        let mut o = Vec::new();
        for i in 0..20 {
            z.push(i as f64);
            t.push(false);
            o.push(2.0 * i as f64);
            z.push(i as f64 + 0.4);
            t.push(true);
            o.push(2.0 * (i as f64 + 0.4) + 5.0);
        }
        let treated = Mask::from_bools(&t);
        let df = DataFrame::builder()
            .float("z", z)
            .float("o", o)
            .build()
            .unwrap();
        let all = Mask::ones(df.n_rows());
        let est = estimate(&df, &all, &treated, "o", &["z".into()]).unwrap();
        assert!((est.cate - 5.0).abs() < 1e-9, "cate = {}", est.cate);
    }

    #[test]
    fn tree_and_brute_agree_bit_for_bit() {
        let (df, treated) = confounded_frame();
        let all = Mask::ones(df.n_rows());
        let adj = ["z".to_owned()];
        let mut stats = HotStats::default();
        let brute = estimate_with(
            &df,
            &all,
            &treated,
            "o",
            &adj,
            &MatchParams {
                strategy: MatchStrategy::Brute,
                ..MatchParams::default()
            },
            &mut stats,
        )
        .unwrap();
        let tree = estimate_with(
            &df,
            &all,
            &treated,
            "o",
            &adj,
            &MatchParams {
                strategy: MatchStrategy::Tree,
                ..MatchParams::default()
            },
            &mut stats,
        )
        .unwrap();
        assert_eq!(brute.cate.to_bits(), tree.cate.to_bits());
        assert_eq!(brute.std_err.to_bits(), tree.std_err.to_bits());
        assert!(stats.tree_visits > 0, "tree path must count visits");
    }

    #[test]
    fn prebuilt_index_reused_across_interventions() {
        let (df, treated) = confounded_frame();
        let all = Mask::ones(df.n_rows());
        let adj = ["z".to_owned()];
        let mut stats = HotStats::default();
        let idx = MatchIndex::build(&df, &all, "o", &adj, 1, &mut stats).unwrap();
        assert!(idx.has_tree());
        let params = MatchParams {
            index: Some(&idx),
            ..MatchParams::default()
        };
        // Same index serves the original intervention and its complement —
        // the index is treatment-independent.
        let a = estimate_with(&df, &all, &treated, "o", &adj, &params, &mut stats).unwrap();
        let fresh = estimate(&df, &all, &treated, "o", &adj).unwrap();
        assert_eq!(a.cate.to_bits(), fresh.cate.to_bits());
        let flipped = !&treated;
        let b = estimate_with(&df, &all, &flipped, "o", &adj, &params, &mut stats).unwrap();
        assert!(
            (b.cate + a.cate).abs() < 1e-9,
            "flipped arms negate the CATE"
        );
    }

    #[test]
    fn heavy_control_reuse_inflates_standard_error() {
        // 50 treated, 5 controls, no covariates: every treated unit matches
        // all 5 controls (distance ties), so each control serves as a match
        // with weight K = 50/5 = 10 — the heavy-reuse regime. The analytic
        // Abadie–Imbens variance is recomputed here from first principles
        // and must match; the naive (uncorrected) contrast variance must be
        // a substantial under-estimate.
        let n_t = 50usize;
        let n_c = 5usize;
        let mut t = Vec::new();
        let mut o = Vec::new();
        for i in 0..n_t {
            t.push(true);
            o.push(10.0 + (i % 7) as f64 - 3.0);
        }
        for j in 0..n_c {
            t.push(false);
            o.push((j % 5) as f64 - 2.0);
        }
        let treated = Mask::from_bools(&t);
        let df = DataFrame::builder().float("o", o.clone()).build().unwrap();
        let all = Mask::ones(df.n_rows());
        let est = estimate(&df, &all, &treated, "o", &[]).unwrap();

        let n = (n_t + n_c) as f64;
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        let (yt, yc) = (&o[..n_t], &o[n_t..]);
        let (mt, mc) = (mean(yt), mean(yc));
        // τ_i with no covariates: treated y_i − ȳ_c, control ȳ_t − y_j.
        let tau: Vec<f64> = yt
            .iter()
            .map(|y| y - mc)
            .chain(yc.iter().map(|y| mt - y))
            .collect();
        let tbar = mean(&tau);
        let var_tau = tau.iter().map(|v| (v - tbar) * (v - tbar)).sum::<f64>() / (n - 1.0);
        // Within-arm residual variance of the intercept-only fit, dof m − 1.
        let s2 = |ys: &[f64]| {
            let m = mean(ys);
            ys.iter().map(|y| (y - m) * (y - m)).sum::<f64>() / (ys.len() as f64 - 1.0)
        };
        let (k_t, k_c) = (n_c as f64 / n_t as f64, n_t as f64 / n_c as f64);
        let reuse =
            n_t as f64 * (k_t * k_t + k_t) * s2(yt) + n_c as f64 * (k_c * k_c + k_c) * s2(yc);
        let expected_var = var_tau / n + reuse / (n * n);
        assert!(
            (est.std_err * est.std_err - expected_var).abs() < 1e-9,
            "variance {} vs analytic {}",
            est.std_err * est.std_err,
            expected_var
        );
        let naive_se = (var_tau / n).sqrt();
        assert!(
            est.std_err > 2.0 * naive_se,
            "reuse correction must dominate here: corrected {} vs naive {}",
            est.std_err,
            naive_se
        );
    }

    #[test]
    fn balanced_arms_barely_affected_by_correction() {
        // With balanced arms and spread-out matches, K_i ≈ K_NEIGHBORS-ish
        // weights distribute evenly and the correction stays the same order
        // as the naive term — the planted-effect recovery (and its
        // significance) in the engine tests must survive. Here: the
        // confounded fixture stays exactly significant because its
        // deterministic outcomes have zero within-stratum residuals.
        let (df, treated) = confounded_frame();
        let all = Mask::ones(df.n_rows());
        let est = estimate(&df, &all, &treated, "o", &["z".into()]).unwrap();
        assert_eq!(est.p_value, 0.0, "deterministic outcome stays exact");
    }

    #[test]
    fn oversized_group_refused_with_budget_hint() {
        // Covariate-free design → no tree can help, so the brute pair
        // model applies: 15 000 × 15 000 pairs = 2.25·10⁸ > the 2·10⁸
        // default budget. The guard fires before any distance work, so
        // building the frame is the only cost here.
        let n = 30_000usize;
        let o: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let t: Vec<bool> = (0..n).map(|i| i < n / 2).collect();
        let df = DataFrame::builder().float("o", o).build().unwrap();
        let all = Mask::ones(n);
        let treated = Mask::from_bools(&t);
        let err = estimate(&df, &all, &treated, "o", &[]).unwrap_err();
        match &err {
            crate::error::CausalError::EstimatorBudget {
                estimator,
                work,
                budget,
                unit,
            } => {
                assert_eq!(*estimator, "matching");
                assert_eq!(*work, 225_000_000);
                assert_eq!(*budget, DEFAULT_MATCHING_BUDGET);
                assert!(unit.contains("pair distances"), "brute unit: {unit}");
            }
            other => panic!("expected EstimatorBudget, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(
            msg.contains("linear") && msg.contains("FAIRCAP_MATCHING_BUDGET"),
            "hint must name alternatives and the knob: {msg}"
        );
        assert!(
            msg.contains("pair distances"),
            "refusal must state its work unit: {msg}"
        );
    }

    #[test]
    fn indexed_work_model_admits_paper_scale() {
        // Post-index cost model: 10⁶ rows ≈ 1.1·10⁸ visits — inside the
        // default budget — while the same subgroup would be 2.5·10¹¹ pair
        // distances, hopelessly over it.
        let indexed = estimated_work(500_000, 500_000, true);
        assert!(indexed <= DEFAULT_MATCHING_BUDGET, "indexed = {indexed}");
        let brute = estimated_work(500_000, 500_000, false);
        assert!(brute > DEFAULT_MATCHING_BUDGET, "brute = {brute}");
        // And the model grows with both the query count and the pool size.
        assert!(estimated_work(1000, 1000, true) < estimated_work(2000, 2000, true));
    }

    #[test]
    fn budget_env_override_parses() {
        // Only values safely above every other fixture's work estimate are
        // set here (tests share the process environment).
        assert_eq!(matching_budget(), DEFAULT_MATCHING_BUDGET);
        std::env::set_var("FAIRCAP_MATCHING_BUDGET", "2000000");
        assert_eq!(matching_budget(), 2_000_000);
        std::env::set_var("FAIRCAP_MATCHING_BUDGET", "0");
        assert_eq!(matching_budget(), u64::MAX, "0 disables the guard");
        std::env::set_var("FAIRCAP_MATCHING_BUDGET", "lots");
        assert_eq!(matching_budget(), DEFAULT_MATCHING_BUDGET);
        std::env::remove_var("FAIRCAP_MATCHING_BUDGET");
    }

    #[test]
    fn insufficient_overlap_rejected() {
        let df = DataFrame::builder()
            .float("o", vec![1.0; 20])
            .build()
            .unwrap();
        let all = Mask::ones(20);
        let treated = Mask::from_indices(20, &[0, 1]);
        assert!(estimate(&df, &all, &treated, "o", &[]).is_err());
    }
}
