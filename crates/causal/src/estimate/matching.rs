//! k-nearest-neighbor covariate-matching CATE estimator.
//!
//! Abadie–Imbens-style matching with regression bias adjustment, run on the
//! same encoded design matrix the regression estimators use (the crate's
//! shared `design` module): categorical covariates one-hot encoded,
//! numeric covariates standardized to unit variance within the subgroup so
//! no single covariate dominates the Euclidean metric.
//!
//! Every unit is matched (with replacement, ties included) to its
//! [`K_NEIGHBORS`] nearest neighbors in the *opposite* arm; the missing
//! potential outcome is imputed as the neighbors' mean outcome plus the
//! bias-adjustment term `μ̂(z_i) − μ̂(z_j)`, where `μ̂` is an OLS outcome
//! regression fit on the opposite arm (Abadie & Imbens 2011). Including
//! distance ties makes the estimator deterministic and means that on
//! *exactly matched* covariates it reproduces exact stratification — a
//! property the integration tests assert against
//! [`stratified`](super::stratified).
//!
//! The reported variance is the Abadie–Imbens (2006) estimator with the
//! **match-reuse correction**: on top of the between-unit variance of the
//! matched contrasts, each unit `i` contributes an extra
//! `(K_i² + K_i)·σ̂²_{arm(i)}` term, where `K_i` is the (tie-weighted)
//! number of times `i` served as a match for opposite-arm units and
//! `σ̂²_arm` is the within-arm residual variance of the bias-adjustment
//! regression. When a handful of controls are matched by many treated
//! units (the regime of the German credit sweep, where treated arms
//! outnumber controls heavily), `K_i` is large and the correction inflates
//! the standard error accordingly — the previous simplified variance
//! ignored reuse entirely and passed implausibly large effects as
//! significant. Complexity is `O(n_t · n_c · d)` per estimate; the
//! [`CateEngine`](crate::cate::CateEngine) cache keyed by `"matching"`
//! amortizes this across repeated queries, and a complexity budget
//! ([`DEFAULT_MATCHING_BUDGET`], overridable via `FAIRCAP_MATCHING_BUDGET`)
//! refuses subgroups whose pair count would make a brute-force estimate run
//! for hours — the typed [`CausalError::EstimatorBudget`] names scalable
//! alternatives instead of silently grinding.

use super::{aipw, design, normal_inference, Estimate, MIN_ARM_SIZE};
use crate::error::{CausalError, Result};
use faircap_table::{DataFrame, Mask};

/// Number of opposite-arm neighbors matched per unit (before tie
/// expansion). Four is the usual bias/variance sweet spot for k-NN
/// matching; ties at the k-th distance are all included.
pub const K_NEIGHBORS: usize = 4;

/// Default complexity budget: the maximum `n_treated · n_control` pair
/// count an estimate may evaluate. Brute-force matching is
/// `O(n_t · n_c · d)`; past this budget a single estimate takes minutes and
/// a constraint sweep takes hours, so the estimator refuses with a typed
/// [`CausalError::EstimatorBudget`] naming scalable alternatives instead of
/// silently burning the time. Override per process with the
/// `FAIRCAP_MATCHING_BUDGET` environment variable (a pair count; `0`
/// disables the guard).
pub const DEFAULT_MATCHING_BUDGET: u64 = 50_000_000;

/// The effective pair budget: `FAIRCAP_MATCHING_BUDGET` when set to a valid
/// pair count (`0` disables the guard), otherwise
/// [`DEFAULT_MATCHING_BUDGET`].
pub fn matching_budget() -> u64 {
    match std::env::var("FAIRCAP_MATCHING_BUDGET") {
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(0) => u64::MAX,
            Ok(n) => n,
            Err(_) => DEFAULT_MATCHING_BUDGET,
        },
        Err(_) => DEFAULT_MATCHING_BUDGET,
    }
}

/// Estimate the CATE by k-NN covariate matching with bias adjustment. See
/// module docs.
pub fn estimate(
    df: &DataFrame,
    group: &Mask,
    treated: &Mask,
    outcome: &str,
    adjustment: &[String],
) -> Result<Estimate> {
    let rows: Vec<usize> = group.to_indices();
    let n = rows.len();
    let n_treated = group.intersect_count(treated);
    let n_control = n - n_treated;
    if n_treated < MIN_ARM_SIZE || n_control < MIN_ARM_SIZE {
        return Err(CausalError::Estimation(format!(
            "insufficient overlap: {n_treated} treated / {n_control} control"
        )));
    }
    let work = n_treated as u64 * n_control as u64;
    let budget = matching_budget();
    if work > budget {
        return Err(CausalError::EstimatorBudget {
            estimator: "matching",
            work,
            budget,
        });
    }

    let y = design::outcome_values(df, outcome, &rows)?;
    let t: Vec<bool> = rows.iter().map(|&r| treated.get(r)).collect();

    // Design [1, Z...] (intercept used by the bias-adjustment regressions;
    // distances read columns 1..).
    let mut x = design::build_intercept_design(df, adjustment, group, &rows)?;

    // Standardize the covariate columns in place (unit in-group variance);
    // constant columns carry no matching information and are zeroed.
    for c in 1..x.cols() {
        let mean = (0..n).map(|r| x.get(r, c)).sum::<f64>() / n as f64;
        let var = (0..n)
            .map(|r| (x.get(r, c) - mean) * (x.get(r, c) - mean))
            .sum::<f64>()
            / n as f64;
        let scale = if var > 1e-24 { 1.0 / var.sqrt() } else { 0.0 };
        for r in 0..n {
            x.set(r, c, (x.get(r, c) - mean) * scale);
        }
    }

    // Bias-adjustment regressions, one per arm, on the standardized design.
    let beta_t = aipw::fit_arm(&x, &y, &t, true)?;
    let beta_c = aipw::fit_arm(&x, &y, &t, false)?;
    let predict =
        |beta: &[f64], r: usize| -> f64 { x.row(r).iter().zip(beta).map(|(a, b)| a * b).sum() };

    let treated_idx: Vec<usize> = (0..n).filter(|&i| t[i]).collect();
    let control_idx: Vec<usize> = (0..n).filter(|&i| !t[i]).collect();

    // Per-unit matched contrast τ_i = ŷ_i(1) − ŷ_i(0), one potential
    // outcome observed and the other imputed from matched neighbors.
    // `match_weight[j]` accumulates K_j: how often unit j served as a
    // match, each use weighted 1/m by the match count m of the unit it
    // imputed (so Σ_j K_j = n and the reuse correction below sees exactly
    // the estimator's implicit weights).
    let mut tau = vec![0.0; n];
    let mut match_weight = vec![0.0; n];
    for i in 0..n {
        let (pool, beta) = if t[i] {
            (&control_idx, &beta_c)
        } else {
            (&treated_idx, &beta_t)
        };
        let mut dists: Vec<(f64, usize)> = pool
            .iter()
            .map(|&j| {
                let (ri, rj) = (x.row(i), x.row(j));
                let d2: f64 = ri[1..]
                    .iter()
                    .zip(&rj[1..])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                (d2, j)
            })
            .collect();
        dists.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        let k = K_NEIGHBORS.min(dists.len());
        let cutoff = dists[k - 1].0 * (1.0 + 1e-9) + 1e-12;
        let mut acc = 0.0;
        let mut m = 0usize;
        for &(d2, _) in &dists {
            if d2 > cutoff {
                break;
            }
            m += 1;
        }
        for &(d2, j) in dists.iter().take(m) {
            debug_assert!(d2 <= cutoff);
            acc += y[j] + predict(beta, i) - predict(beta, j);
            match_weight[j] += 1.0 / m as f64;
        }
        let imputed = acc / m as f64;
        tau[i] = if t[i] { y[i] - imputed } else { imputed - y[i] };
    }

    let cate = tau.iter().sum::<f64>() / n as f64;
    let var_tau =
        tau.iter().map(|v| (v - cate) * (v - cate)).sum::<f64>() / (n as f64 - 1.0).max(1.0);

    // Abadie–Imbens reuse correction: within-arm residual variances of the
    // bias-adjustment regressions proxy the conditional outcome variance
    // σ̂²(z, arm), and each unit adds (K_i² + K_i)·σ̂²_arm(i) — the reuse
    // variance a unit matched K_i times injects into the estimator.
    let resid_var = |beta: &[f64], arm: bool| -> f64 {
        let p = x.cols() as f64;
        let (mut ss, mut m) = (0.0, 0usize);
        for i in 0..n {
            if t[i] == arm {
                let r = y[i] - predict(beta, i);
                ss += r * r;
                m += 1;
            }
        }
        ss / (m as f64 - p).max(1.0)
    };
    let (s2_t, s2_c) = (resid_var(&beta_t, true), resid_var(&beta_c, false));
    let reuse: f64 = (0..n)
        .map(|i| {
            let k = match_weight[i];
            (k * k + k) * if t[i] { s2_t } else { s2_c }
        })
        .sum();
    let var = var_tau / n as f64 + reuse / (n as f64 * n as f64);
    let (std_err, t_stat, p_value) = normal_inference(cate, var);
    Ok(Estimate {
        cate,
        std_err,
        t_stat,
        p_value,
        n_treated,
        n_control,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use faircap_table::DataFrame;

    /// Same confounded fixture as the other estimators:
    /// z ∈ {low, high}; treatment more likely when z=high; O = 10·T + 50·z.
    fn confounded_frame() -> (DataFrame, Mask) {
        let mut z = Vec::new();
        let mut t = Vec::new();
        let mut o = Vec::new();
        for i in 0..40 {
            z.push("low");
            let ti = i < 10;
            t.push(ti);
            o.push(if ti { 10.0 } else { 0.0 });
        }
        for i in 0..40 {
            z.push("high");
            let ti = i < 30;
            t.push(ti);
            o.push(50.0 + if ti { 10.0 } else { 0.0 });
        }
        let treated = Mask::from_bools(&t);
        let df = DataFrame::builder()
            .cat("z", &z)
            .float("o", o)
            .build()
            .unwrap();
        (df, treated)
    }

    #[test]
    fn recovers_true_effect_under_confounding() {
        let (df, treated) = confounded_frame();
        let all = Mask::ones(df.n_rows());
        let est = estimate(&df, &all, &treated, "o", &["z".into()]).unwrap();
        assert!((est.cate - 10.0).abs() < 1e-9, "cate = {}", est.cate);
        assert_eq!(est.n_treated, 40);
        assert_eq!(est.n_control, 40);
    }

    #[test]
    fn exact_matches_reproduce_stratification() {
        let (df, treated) = confounded_frame();
        let all = Mask::ones(df.n_rows());
        let m = estimate(&df, &all, &treated, "o", &["z".into()]).unwrap();
        let s =
            super::super::stratified::estimate(&df, &all, &treated, "o", &["z".into()]).unwrap();
        assert!(
            (m.cate - s.cate).abs() < 1e-9,
            "matching {} vs stratified {}",
            m.cate,
            s.cate
        );
    }

    #[test]
    fn empty_adjustment_is_difference_in_means() {
        let (df, treated) = confounded_frame();
        let all = Mask::ones(df.n_rows());
        let est = estimate(&df, &all, &treated, "o", &[]).unwrap();
        // Zero covariates → every opposite-arm unit ties at distance 0 →
        // imputation by the opposite arm mean: 47.5 − 12.5 = 35.
        assert!((est.cate - 35.0).abs() < 1e-9, "cate = {}", est.cate);
    }

    #[test]
    fn bias_adjustment_corrects_inexact_matches() {
        // Controls sit at z = i, treated at z = i + 0.4; O = 2·z + 5·T.
        // Raw nearest-neighbor imputation is off by 2·0.4 per match; the
        // linear bias adjustment removes it exactly.
        let mut z = Vec::new();
        let mut t = Vec::new();
        let mut o = Vec::new();
        for i in 0..20 {
            z.push(i as f64);
            t.push(false);
            o.push(2.0 * i as f64);
            z.push(i as f64 + 0.4);
            t.push(true);
            o.push(2.0 * (i as f64 + 0.4) + 5.0);
        }
        let treated = Mask::from_bools(&t);
        let df = DataFrame::builder()
            .float("z", z)
            .float("o", o)
            .build()
            .unwrap();
        let all = Mask::ones(df.n_rows());
        let est = estimate(&df, &all, &treated, "o", &["z".into()]).unwrap();
        assert!((est.cate - 5.0).abs() < 1e-9, "cate = {}", est.cate);
    }

    #[test]
    fn heavy_control_reuse_inflates_standard_error() {
        // 50 treated, 5 controls, no covariates: every treated unit matches
        // all 5 controls (distance ties), so each control serves as a match
        // with weight K = 50/5 = 10 — the heavy-reuse regime. The analytic
        // Abadie–Imbens variance is recomputed here from first principles
        // and must match; the naive (uncorrected) contrast variance must be
        // a substantial under-estimate.
        let n_t = 50usize;
        let n_c = 5usize;
        let mut t = Vec::new();
        let mut o = Vec::new();
        for i in 0..n_t {
            t.push(true);
            o.push(10.0 + (i % 7) as f64 - 3.0);
        }
        for j in 0..n_c {
            t.push(false);
            o.push((j % 5) as f64 - 2.0);
        }
        let treated = Mask::from_bools(&t);
        let df = DataFrame::builder().float("o", o.clone()).build().unwrap();
        let all = Mask::ones(df.n_rows());
        let est = estimate(&df, &all, &treated, "o", &[]).unwrap();

        let n = (n_t + n_c) as f64;
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        let (yt, yc) = (&o[..n_t], &o[n_t..]);
        let (mt, mc) = (mean(yt), mean(yc));
        // τ_i with no covariates: treated y_i − ȳ_c, control ȳ_t − y_j.
        let tau: Vec<f64> = yt
            .iter()
            .map(|y| y - mc)
            .chain(yc.iter().map(|y| mt - y))
            .collect();
        let tbar = mean(&tau);
        let var_tau = tau.iter().map(|v| (v - tbar) * (v - tbar)).sum::<f64>() / (n - 1.0);
        // Within-arm residual variance of the intercept-only fit, dof m − 1.
        let s2 = |ys: &[f64]| {
            let m = mean(ys);
            ys.iter().map(|y| (y - m) * (y - m)).sum::<f64>() / (ys.len() as f64 - 1.0)
        };
        let (k_t, k_c) = (n_c as f64 / n_t as f64, n_t as f64 / n_c as f64);
        let reuse =
            n_t as f64 * (k_t * k_t + k_t) * s2(yt) + n_c as f64 * (k_c * k_c + k_c) * s2(yc);
        let expected_var = var_tau / n + reuse / (n * n);
        assert!(
            (est.std_err * est.std_err - expected_var).abs() < 1e-9,
            "variance {} vs analytic {}",
            est.std_err * est.std_err,
            expected_var
        );
        let naive_se = (var_tau / n).sqrt();
        assert!(
            est.std_err > 2.0 * naive_se,
            "reuse correction must dominate here: corrected {} vs naive {}",
            est.std_err,
            naive_se
        );
    }

    #[test]
    fn balanced_arms_barely_affected_by_correction() {
        // With balanced arms and spread-out matches, K_i ≈ K_NEIGHBORS-ish
        // weights distribute evenly and the correction stays the same order
        // as the naive term — the planted-effect recovery (and its
        // significance) in the engine tests must survive. Here: the
        // confounded fixture stays exactly significant because its
        // deterministic outcomes have zero within-stratum residuals.
        let (df, treated) = confounded_frame();
        let all = Mask::ones(df.n_rows());
        let est = estimate(&df, &all, &treated, "o", &["z".into()]).unwrap();
        assert_eq!(est.p_value, 0.0, "deterministic outcome stays exact");
    }

    #[test]
    fn oversized_group_refused_with_budget_hint() {
        // 10 000 × 10 000 pairs = 10⁸ > the 5·10⁷ default budget. The guard
        // fires before any distance work, so building the frame is the only
        // cost here.
        let n = 20_000usize;
        let o: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let t: Vec<bool> = (0..n).map(|i| i < n / 2).collect();
        let df = DataFrame::builder().float("o", o).build().unwrap();
        let all = Mask::ones(n);
        let treated = Mask::from_bools(&t);
        let err = estimate(&df, &all, &treated, "o", &[]).unwrap_err();
        match &err {
            crate::error::CausalError::EstimatorBudget {
                estimator,
                work,
                budget,
            } => {
                assert_eq!(*estimator, "matching");
                assert_eq!(*work, 100_000_000);
                assert_eq!(*budget, DEFAULT_MATCHING_BUDGET);
            }
            other => panic!("expected EstimatorBudget, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(
            msg.contains("linear") && msg.contains("FAIRCAP_MATCHING_BUDGET"),
            "hint must name alternatives and the knob: {msg}"
        );
    }

    #[test]
    fn budget_env_override_parses() {
        // Only values safely above every other fixture's pair count are set
        // here (tests share the process environment).
        assert_eq!(matching_budget(), DEFAULT_MATCHING_BUDGET);
        std::env::set_var("FAIRCAP_MATCHING_BUDGET", "2000000");
        assert_eq!(matching_budget(), 2_000_000);
        std::env::set_var("FAIRCAP_MATCHING_BUDGET", "0");
        assert_eq!(matching_budget(), u64::MAX, "0 disables the guard");
        std::env::set_var("FAIRCAP_MATCHING_BUDGET", "lots");
        assert_eq!(matching_budget(), DEFAULT_MATCHING_BUDGET);
        std::env::remove_var("FAIRCAP_MATCHING_BUDGET");
    }

    #[test]
    fn insufficient_overlap_rejected() {
        let df = DataFrame::builder()
            .float("o", vec![1.0; 20])
            .build()
            .unwrap();
        let all = Mask::ones(20);
        let treated = Mask::from_indices(20, &[0, 1]);
        assert!(estimate(&df, &all, &treated, "o", &[]).is_err());
    }
}
