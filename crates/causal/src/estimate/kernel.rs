//! Blocked, columnar estimation kernels — the shared hot path of the
//! regression estimators and matching.
//!
//! The original estimators assembled a row-major design matrix with a
//! per-row gather (`Mask::iter_ones` → `CovariateBlock::fill`) and ran
//! `O(n·k²)` accumulations through [`Matrix::gram`]'s row-major loops. At
//! 10⁶ rows the gather itself dominates: every row pays iterator and
//! branch overhead before a single flop. This module replaces both halves:
//!
//! * **Fused assembly** — [`build_columns`] walks the subgroup mask one
//!   *word* at a time ([`faircap_table::MaskView::for_each_set_word`]),
//!   decoding set bits with `trailing_zeros`, and writes each design
//!   column as a contiguous `Vec<f64>`. Unselected 64-row spans cost one
//!   comparison.
//! * **Blocked accumulation** — [`gram_columns`], [`xty_columns`],
//!   [`weighted_gram_score`] and [`arm_gram_xty`] stream column pairs in
//!   `BLOCK`-row chunks, so both operand columns stay cache-resident
//!   across the `k²/2` entry loop.
//! * **Within-estimate parallelism** — the per-output-column loops fan out
//!   as [`crate::exec`] task units. Each task owns exactly one output slot
//!   and the per-entry accumulation order (ascending row within ascending
//!   block) never depends on the worker count, so parallel results are
//!   **bit-identical** to serial ones — property-tested in
//!   `tests/prop_kernels.rs`.
//!
//! Numerical contract: kernels accumulate *every* term in ascending row
//! order with no zero-skipping, which makes the result a pure function of
//! the operand columns. The pre-kernel implementations are preserved in
//! [`super::reference`] for the property tests and the
//! `estimator_bench` before/after measurement.

use super::design;
use crate::error::{CausalError, Result};
use crate::exec;
use crate::linalg::Matrix;
use faircap_table::{DataFrame, Mask};

/// Subgroup size at or above which one estimate fans out across worker
/// threads ([`auto_workers`]). Below it, thread spawn overhead would eat
/// the win and everything runs serially.
pub const PAR_MIN_ROWS: usize = 1 << 16;

/// Row-block length of the blocked accumulation kernels. Two f64 columns
/// of one block (2 × 32 KiB) fit comfortably in L2 next to the output.
const BLOCK: usize = 4096;

/// Worker threads for one estimate over `n_rows` design rows: 1 below
/// [`PAR_MIN_ROWS`], otherwise [`exec::resolve_workers`]'s default (the
/// `FAIRCAP_WORKERS` environment knob, falling back to the machine's
/// available parallelism).
pub fn auto_workers(n_rows: usize) -> usize {
    if n_rows >= PAR_MIN_ROWS {
        exec::resolve_workers(None)
    } else {
        1
    }
}

/// Run `n_tasks` closures through the work-stealing executor, collecting
/// outputs in task order, and count the fan-out in `tasks` when it
/// actually went parallel. The task function must be a pure function of
/// its index for the bit-identity contract to hold.
pub(crate) fn fan_out<T: Send>(
    n_tasks: usize,
    workers: usize,
    tasks: &mut u64,
    task: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let effective = workers.max(1).min(n_tasks.max(1));
    if effective > 1 {
        *tasks += n_tasks as u64;
    }
    let (out, _) = exec::run_work_stealing(n_tasks, effective, task);
    out
}

/// A design matrix stored column-major: `cols()[c][r]` is the value of
/// design column `c` at (group-dense) row `r`. Column 0 is always the
/// intercept; [`build_columns`] optionally inserts the treatment
/// indicator as column 1 ahead of the covariate blocks.
#[derive(Debug, Clone)]
pub struct ColumnDesign {
    cols: Vec<Vec<f64>>,
}

impl ColumnDesign {
    /// Number of (group-dense) rows.
    pub fn n(&self) -> usize {
        self.cols.first().map_or(0, Vec::len)
    }

    /// Number of design columns (including the intercept).
    pub fn k(&self) -> usize {
        self.cols.len()
    }

    /// The columns, each of length [`Self::n`].
    pub fn cols(&self) -> &[Vec<f64>] {
        &self.cols
    }

    /// Mutable column access — matching standardizes covariate columns in
    /// place after assembly.
    pub(crate) fn cols_mut(&mut self) -> &mut [Vec<f64>] {
        &mut self.cols
    }

    /// Wrap pre-built columns (the reference implementations build theirs
    /// row by row).
    pub fn from_cols(cols: Vec<Vec<f64>>) -> ColumnDesign {
        ColumnDesign { cols }
    }
}

/// Assemble the `[1, (T,) Z…]` design over the rows of `group` in
/// column-major order with the fused word-at-a-time gather. With
/// `treated = Some(t)`, column 1 is the 0/1 treatment indicator (the OLS
/// layout); with `None` the covariate blocks start at column 1 (the
/// propensity / per-arm / matching layout). Covariate blocks assemble in
/// parallel (one task per adjustment column) when `workers > 1`.
pub fn build_columns(
    df: &DataFrame,
    adjustment: &[String],
    group: &Mask,
    treated: Option<&Mask>,
    workers: usize,
    tasks: &mut u64,
) -> Result<ColumnDesign> {
    let n = group.count();
    let (blocks, z_width) = design::build_blocks(df, adjustment, group)?;
    let mut cols = Vec::with_capacity(2 + z_width);
    cols.push(vec![1.0; n]);
    if let Some(t) = treated {
        cols.push(indicator_column(group, t));
    }
    let assembled = fan_out(blocks.len(), workers, tasks, |b| {
        assemble_block(&blocks[b], group, n)
    });
    for block_cols in assembled {
        cols.extend(block_cols);
    }
    Ok(ColumnDesign { cols })
}

/// Columnarize one covariate block over the group's set bits.
fn assemble_block(block: &design::CovariateBlock, group: &Mask, n: usize) -> Vec<Vec<f64>> {
    match block {
        design::CovariateBlock::Numeric { values } => {
            let mut col = Vec::with_capacity(n);
            group.view().for_each_set_word(|wi, word| {
                let base = wi * 64;
                let mut w = word;
                while w != 0 {
                    col.push(values[base + w.trailing_zeros() as usize]);
                    w &= w - 1;
                }
            });
            vec![col]
        }
        design::CovariateBlock::OneHot { codes, levels } => {
            let width = levels.saturating_sub(1);
            let mut cols = vec![vec![0.0f64; n]; width];
            let mut dense = 0usize;
            group.view().for_each_set_word(|wi, word| {
                let base = wi * 64;
                let mut w = word;
                while w != 0 {
                    let code = codes[base + w.trailing_zeros() as usize];
                    // level 0 is the dropped reference level.
                    if code != u32::MAX && code > 0 {
                        cols[code as usize - 1][dense] = 1.0;
                    }
                    dense += 1;
                    w &= w - 1;
                }
            });
            cols
        }
    }
}

/// The 0/1 indicator of `of` restricted to the set rows of `group`, as a
/// dense f64 column (word-fused: `of`'s word is combined with the group
/// word in a register).
fn indicator_column(group: &Mask, of: &Mask) -> Vec<f64> {
    let of_words = of.as_words();
    let mut col = Vec::with_capacity(group.count());
    group.view().for_each_set_word(|wi, word| {
        let t = of_words[wi];
        let mut w = word;
        while w != 0 {
            let b = w.trailing_zeros();
            col.push(((t >> b) & 1) as f64);
            w &= w - 1;
        }
    });
    col
}

/// The boolean indicator of `of` restricted to the set rows of `group`
/// (dense, group order).
pub fn gather_indicator(group: &Mask, of: &Mask) -> Vec<bool> {
    let of_words = of.as_words();
    let mut out = Vec::with_capacity(group.count());
    group.view().for_each_set_word(|wi, word| {
        let t = of_words[wi];
        let mut w = word;
        while w != 0 {
            let b = w.trailing_zeros();
            out.push((t >> b) & 1 == 1);
            w &= w - 1;
        }
    });
    out
}

/// Outcome values over the set rows of `group` (dense, group order), or a
/// typed error naming the column when any cell is non-numeric.
pub fn gather_outcome(df: &DataFrame, outcome: &str, group: &Mask) -> Result<Vec<f64>> {
    let col = df.column(outcome)?;
    let mut out = Vec::with_capacity(group.count());
    for (wi, &word) in group.as_words().iter().enumerate() {
        let base = wi * 64;
        let mut w = word;
        while w != 0 {
            let i = base + w.trailing_zeros() as usize;
            out.push(col.get_f64(i).ok_or_else(|| {
                CausalError::Estimation(format!("outcome `{outcome}` is not numeric"))
            })?);
            w &= w - 1;
        }
    }
    Ok(out)
}

/// `XᵀX` over column-major design columns: blocked, no zero-skipping,
/// ascending-row accumulation per entry. One executor task per output
/// column `j` computes the entries `(i ≤ j, j)`; the symmetric mirror is
/// filled afterwards. Bit-identical to [`super::reference::gram_naive`]
/// for any block size and worker count.
pub fn gram_columns(cols: &[Vec<f64>], workers: usize, tasks: &mut u64) -> Matrix {
    let k = cols.len();
    let entries = fan_out(k, workers, tasks, |j| {
        let cj = &cols[j];
        let n = cj.len();
        let mut acc = vec![0.0f64; j + 1];
        let mut start = 0;
        while start < n {
            let end = (start + BLOCK).min(n);
            let cj_b = &cj[start..end];
            for (i, slot) in acc.iter_mut().enumerate() {
                let ci_b = &cols[i][start..end];
                let mut a = *slot;
                for (x, y) in ci_b.iter().zip(cj_b) {
                    a += x * y;
                }
                *slot = a;
            }
            start = end;
        }
        acc
    });
    let mut g = Matrix::zeros(k, k);
    for (j, acc) in entries.iter().enumerate() {
        for (i, &v) in acc.iter().enumerate() {
            g.set(i, j, v);
            g.set(j, i, v);
        }
    }
    g
}

/// `Xᵀy` over column-major design columns (blocked, no zero-skipping; one
/// task per design column).
pub fn xty_columns(cols: &[Vec<f64>], y: &[f64], workers: usize, tasks: &mut u64) -> Vec<f64> {
    fan_out(cols.len(), workers, tasks, |j| {
        let cj = &cols[j];
        let mut a = 0.0f64;
        let mut start = 0;
        while start < cj.len() {
            let end = (start + BLOCK).min(cj.len());
            for (x, v) in cj[start..end].iter().zip(&y[start..end]) {
                a += x * v;
            }
            start = end;
        }
        a
    })
}

/// One IRLS step's reductions in a single fused pass: the weighted gram
/// `Xᵀdiag(w)X` and the score `Xᵀr`. Task `j` owns gram column `j` and
/// score entry `j`; each gram term accumulates as `(w·xᵢ)·xⱼ` in
/// ascending row order.
pub fn weighted_gram_score(
    cols: &[Vec<f64>],
    w: &[f64],
    resid: &[f64],
    workers: usize,
    tasks: &mut u64,
) -> (Matrix, Vec<f64>) {
    let k = cols.len();
    let parts = fan_out(k, workers, tasks, |j| {
        let cj = &cols[j];
        let n = cj.len();
        let mut acc = vec![0.0f64; j + 1];
        let mut score = 0.0f64;
        let mut start = 0;
        while start < n {
            let end = (start + BLOCK).min(n);
            let cj_b = &cj[start..end];
            let w_b = &w[start..end];
            for (i, slot) in acc.iter_mut().enumerate() {
                let ci_b = &cols[i][start..end];
                let mut a = *slot;
                for ((x, y), wv) in ci_b.iter().zip(cj_b).zip(w_b) {
                    a += (wv * x) * y;
                }
                *slot = a;
            }
            for (x, r) in cj_b.iter().zip(&resid[start..end]) {
                score += x * r;
            }
            start = end;
        }
        (acc, score)
    });
    let mut g = Matrix::zeros(k, k);
    let mut score = vec![0.0f64; k];
    for (j, (acc, s)) in parts.iter().enumerate() {
        score[j] = *s;
        for (i, &v) in acc.iter().enumerate() {
            g.set(i, j, v);
            g.set(j, i, v);
        }
    }
    (g, score)
}

/// Arm-restricted `XᵀX` and `Xᵀy` in one fused pass, with the arm
/// expressed as a dense 0/1 f64 indicator (`m`): gram terms accumulate as
/// `(m·xᵢ)·xⱼ`, the right-hand side as `(m·xⱼ)·y`. Rows outside the arm
/// contribute exact zeros, so the result equals the arm-only reduction
/// while the loop stays branch-free and streaming.
pub fn arm_gram_xty(
    cols: &[Vec<f64>],
    y: &[f64],
    arm: &[f64],
    workers: usize,
    tasks: &mut u64,
) -> (Matrix, Vec<f64>) {
    let k = cols.len();
    let parts = fan_out(k, workers, tasks, |j| {
        let cj = &cols[j];
        let n = cj.len();
        let mut acc = vec![0.0f64; j + 1];
        let mut rhs = 0.0f64;
        let mut start = 0;
        while start < n {
            let end = (start + BLOCK).min(n);
            let cj_b = &cj[start..end];
            let m_b = &arm[start..end];
            for (i, slot) in acc.iter_mut().enumerate() {
                let ci_b = &cols[i][start..end];
                let mut a = *slot;
                for ((x, y2), m) in ci_b.iter().zip(cj_b).zip(m_b) {
                    a += (m * x) * y2;
                }
                *slot = a;
            }
            for ((x, m), v) in cj_b.iter().zip(m_b).zip(&y[start..end]) {
                rhs += (m * x) * v;
            }
            start = end;
        }
        (acc, rhs)
    });
    let mut g = Matrix::zeros(k, k);
    let mut xty = vec![0.0f64; k];
    for (j, (acc, r)) in parts.iter().enumerate() {
        xty[j] = *r;
        for (i, &v) in acc.iter().enumerate() {
            g.set(i, j, v);
            g.set(j, i, v);
        }
    }
    (g, xty)
}

/// `X·β` over column-major columns: per row, terms accumulate in
/// ascending column order — the same order as a row-major dot product, so
/// fitted values are bit-identical to the per-row formulation while the
/// traversal streams one column at a time.
pub fn mat_vec_columns(cols: &[Vec<f64>], beta: &[f64]) -> Vec<f64> {
    let n = cols.first().map_or(0, Vec::len);
    let mut out = vec![0.0f64; n];
    for (col, &b) in cols.iter().zip(beta) {
        for (o, &x) in out.iter_mut().zip(col) {
            *o += x * b;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use faircap_table::DataFrame;

    fn frame() -> DataFrame {
        DataFrame::builder()
            .cat("c", &["a", "b", "c", "a", "b", "c", "a", "b"])
            .int("x", vec![5, 7, 9, 2, 4, 6, 8, 1])
            .float("y", vec![1.5, 2.5, 0.5, 3.0, 1.0, 2.0, 4.0, 0.0])
            .build()
            .unwrap()
    }

    #[test]
    fn columns_match_row_major_assembly() {
        let df = frame();
        let group = Mask::from_indices(8, &[0, 2, 3, 5, 7]);
        let treated = Mask::from_indices(8, &[0, 3, 5]);
        let adj = ["c".to_owned(), "x".to_owned()];
        let mut tasks = 0;
        let d = build_columns(&df, &adj, &group, Some(&treated), 1, &mut tasks).unwrap();
        let rows: Vec<usize> = group.iter_ones().collect();
        // Row-major reference: [1, T, onehot(c), x] per group row.
        let x = design::build_intercept_design(&df, &adj, &group, &rows).unwrap();
        assert_eq!(d.n(), rows.len());
        assert_eq!(d.k(), 1 + x.cols()); // design adds the T column
        for (dense, &row) in rows.iter().enumerate() {
            assert_eq!(d.cols()[0][dense], 1.0);
            let want_t = if treated.get(row) { 1.0 } else { 0.0 };
            assert_eq!(d.cols()[1][dense], want_t);
            for c in 1..x.cols() {
                assert_eq!(d.cols()[1 + c][dense].to_bits(), x.get(dense, c).to_bits());
            }
        }
    }

    #[test]
    fn gram_matches_dense_matrix_gram() {
        // No zeros in the operands, so Matrix::gram's zero-skip never
        // fires and the two accumulation orders coincide term-for-term.
        let cols = vec![vec![1.0, 2.0, 3.0, 4.0], vec![0.5, 1.5, 2.5, 3.5]];
        let rows: Vec<Vec<f64>> = (0..4).map(|r| vec![cols[0][r], cols[1][r]]).collect();
        let row_refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let dense = Matrix::from_rows(&row_refs).gram();
        let mut tasks = 0;
        let g = gram_columns(&cols, 1, &mut tasks);
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(g.get(i, j).to_bits(), dense.get(i, j).to_bits());
            }
        }
    }

    #[test]
    fn arm_kernel_equals_filtered_reduction() {
        let cols = vec![vec![1.0; 5], vec![2.0, -1.0, 0.5, 3.0, 1.0]];
        let y = [10.0, 20.0, 30.0, 40.0, 50.0];
        let arm = [1.0, 0.0, 1.0, 0.0, 1.0];
        let mut tasks = 0;
        let (g, xty) = arm_gram_xty(&cols, &y, &arm, 1, &mut tasks);
        assert_eq!(g.get(0, 0), 3.0);
        assert_eq!(xty[0], 90.0);
        assert_eq!(g.get(0, 1), 2.0 + 0.5 + 1.0);
        assert_eq!(xty[1], 2.0 * 10.0 + 0.5 * 30.0 + 1.0 * 50.0);
    }

    #[test]
    fn parallel_fan_out_is_bit_identical_and_counted() {
        let n = 5000;
        let cols: Vec<Vec<f64>> = (0..3)
            .map(|c| {
                (0..n)
                    .map(|r| ((r * 31 + c * 7) % 97) as f64 * 0.125 - 6.0)
                    .collect()
            })
            .collect();
        let mut t_serial = 0;
        let serial = gram_columns(&cols, 1, &mut t_serial);
        assert_eq!(t_serial, 0, "serial runs must not count fan-out tasks");
        let mut t_par = 0;
        let par = gram_columns(&cols, 3, &mut t_par);
        assert_eq!(t_par, 3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(par.get(i, j).to_bits(), serial.get(i, j).to_bits());
            }
        }
    }

    #[test]
    fn auto_workers_thresholds_on_rows() {
        assert_eq!(auto_workers(PAR_MIN_ROWS - 1), 1);
        assert!(auto_workers(PAR_MIN_ROWS) >= 1);
    }
}
