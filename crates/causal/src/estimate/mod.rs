//! CATE estimation under backdoor adjustment.
//!
//! All estimators compute `CATE(T, O | B)` (Section 3 of the paper): the
//! expected difference in outcome between treated and control rows of a
//! subgroup, adjusting for a confounder set `Z` identified from the causal
//! DAG.
//!
//! * [`linear`] — OLS with a treatment indicator and one-hot-encoded
//!   covariates; equivalent to DoWhy's `backdoor.linear_regression`, the
//!   estimator used by the paper's reference implementation.
//! * [`stratified`] — exact stratification on the joint values of `Z`
//!   (numeric covariates quantile-binned), i.e. the literal adjustment
//!   formula; used as an ablation and as ground-truth cross-check.
//! * [`ipw`] — inverse propensity weighting with an IRLS logistic
//!   propensity model; the third member of DoWhy's backdoor trio.
//! * [`aipw`] — augmented IPW (doubly robust): per-arm outcome regressions
//!   plus the IPW propensity model, consistent when *either* nuisance model
//!   is correct.
//! * [`matching`] — k-nearest-neighbor covariate matching with regression
//!   bias adjustment on the encoded design matrix, served by a reusable
//!   KD-tree index ([`kdtree`]) over the standardized design.
//!
//! The estimators share a hot-path layer: [`kernel`] holds the blocked
//! column-major design-assembly and reduction kernels (with within-estimate
//! parallel fan-out through the work-stealing executor), and [`mod@reference`]
//! preserves the naive row-major implementations the kernels are
//! property-tested against bit for bit.
//!
//! `docs/estimators.md` in the repository root documents the assumptions
//! and bias/variance trade-offs of each estimator and when the doubly
//! robust one is worth its extra cost.

pub mod aipw;
pub(crate) mod design;
pub mod ipw;
pub mod kdtree;
pub mod kernel;
pub mod linear;
pub mod matching;
pub mod reference;
pub mod stratified;

use faircap_table::{DataFrame, Mask};

use crate::error::Result;

/// Normal-approximation inference shared by the weighting, stratification,
/// and matching estimators: `(std_err, t_stat, p_value)` from a point
/// estimate and its variance. Zero variance means a deterministic outcome,
/// where a non-zero effect is treated as exact (p = 0) and a zero effect
/// as uninformative (p = 1).
pub(crate) fn normal_inference(cate: f64, var: f64) -> (f64, f64, f64) {
    use faircap_table::stats::normal_cdf;
    if var > 0.0 {
        let se = var.sqrt();
        let z = cate / se;
        (se, z, 2.0 * (1.0 - normal_cdf(z.abs())))
    } else {
        (
            0.0,
            f64::INFINITY * cate.signum(),
            if cate == 0.0 { 1.0 } else { 0.0 },
        )
    }
}

/// Hot-path cost accounting for one estimate (or an aggregate over many):
/// wall-clock nanoseconds split by pipeline stage, plus executor and tree
/// counters. Estimators accumulate into a `&mut HotStats` threaded through
/// [`EstimateCtx`]; the [`CateEngine`](crate::cate::CateEngine) aggregates
/// them across queries and the serving layer surfaces the totals in
/// `/v1/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HotStats {
    /// Nanoseconds spent assembling the columnar design (and gathering the
    /// outcome / treatment indicator).
    pub build_ns: u64,
    /// Nanoseconds spent constructing reusable indices (the KD-tree over
    /// the standardized design; zero for estimators without one or when a
    /// cached index was reused).
    pub index_ns: u64,
    /// Nanoseconds in everything downstream — reductions, solves, queries.
    /// Filled in by the engine as `total − build − index`.
    pub solve_ns: u64,
    /// Task units handed to the work-stealing executor by kernel fan-out
    /// (zero when every kernel ran serially).
    pub tasks: u64,
    /// KD-tree nodes visited across matching queries (zero for the brute
    /// path and the non-matching estimators).
    pub tree_visits: u64,
}

impl HotStats {
    /// Fold another accounting record into this one (saturating).
    pub fn absorb(&mut self, other: &HotStats) {
        self.build_ns = self.build_ns.saturating_add(other.build_ns);
        self.index_ns = self.index_ns.saturating_add(other.index_ns);
        self.solve_ns = self.solve_ns.saturating_add(other.solve_ns);
        self.tasks = self.tasks.saturating_add(other.tasks);
        self.tree_visits = self.tree_visits.saturating_add(other.tree_visits);
    }
}

/// Per-query context threaded through [`Estimator::estimate_with_ctx`]:
/// the kernel worker count, the cost-accounting sink, and (for the matching
/// estimator) the engine's match-index cache together with the querying
/// subgroup's fingerprint, so one KD-tree index is built per
/// `(subgroup, adjustment set)` and reused across the intervention sweep.
pub struct EstimateCtx<'a> {
    /// Worker count for kernel fan-out (1 = serial; results are
    /// bit-identical either way).
    pub workers: usize,
    /// Accumulated hot-path costs for this query.
    pub stats: HotStats,
    /// Match-index cache and the subgroup fingerprint keying it.
    pub index_cache: Option<(&'a crate::cate::MatchIndexCache, u64)>,
}

/// A treatment-effect estimate with inference statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Point estimate of the (conditional) average treatment effect.
    pub cate: f64,
    /// Standard error of the estimate.
    pub std_err: f64,
    /// t-statistic (`cate / std_err`).
    pub t_stat: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Number of treated rows used.
    pub n_treated: usize,
    /// Number of control rows used.
    pub n_control: usize,
}

impl Estimate {
    /// Whether the estimate is statistically significant at level `alpha`.
    pub fn is_significant(&self, alpha: f64) -> bool {
        self.p_value <= alpha
    }
}

/// Which estimator to use; see module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EstimatorKind {
    /// OLS linear adjustment (paper default).
    #[default]
    Linear,
    /// Exact stratification on the adjustment set.
    Stratified,
    /// Inverse propensity weighting (Hájek-normalized).
    Ipw,
    /// Augmented IPW — doubly robust outcome-regression + propensity score.
    Aipw,
    /// k-NN covariate matching with regression bias adjustment.
    Matching,
}

impl EstimatorKind {
    /// Every built-in estimator, in ablation order — what the CLI accepts
    /// and the bench drivers sweep.
    pub const ALL: [EstimatorKind; 5] = [
        EstimatorKind::Linear,
        EstimatorKind::Stratified,
        EstimatorKind::Ipw,
        EstimatorKind::Aipw,
        EstimatorKind::Matching,
    ];

    /// Parse a built-in estimator from its stable name (the same string
    /// [`Estimator::name`] returns).
    ///
    /// # Examples
    ///
    /// ```
    /// use faircap_causal::EstimatorKind;
    /// assert_eq!(EstimatorKind::parse("aipw"), Some(EstimatorKind::Aipw));
    /// assert_eq!(EstimatorKind::parse("nope"), None);
    /// ```
    pub fn parse(name: &str) -> Option<EstimatorKind> {
        EstimatorKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// Minimum rows per arm below which an estimate is refused. The paper
/// requires statistically significant interventions; tiny arms make the
/// inference meaningless.
pub const MIN_ARM_SIZE: usize = 5;

/// A pluggable CATE estimator.
///
/// [`EstimatorKind`] implements this for the built-in estimators;
/// downstream crates can implement it to bring their own and pass it per
/// solve request without rebuilding a session. The
/// [`CateEngine`](crate::cate::CateEngine) caches estimates keyed by
/// [`Estimator::name`], so implementations must return a name that uniquely
/// identifies the estimator's behaviour — cache hits and misses are also
/// reported per name (see
/// [`CateEngine::cache_stats_by_estimator`](crate::cate::CateEngine::cache_stats_by_estimator)).
///
/// # Examples
///
/// Wrapping a built-in estimator under a distinct cache identity:
///
/// ```
/// use faircap_causal::{Estimate, Estimator, EstimatorKind};
/// use faircap_table::{DataFrame, Mask};
///
/// struct PinnedLinear;
///
/// impl Estimator for PinnedLinear {
///     fn name(&self) -> &str {
///         "pinned-linear-v1" // distinct name → distinct cache scope
///     }
///
///     fn estimate(
///         &self,
///         df: &DataFrame,
///         group: &Mask,
///         treated: &Mask,
///         outcome: &str,
///         adjustment: &[String],
///     ) -> faircap_causal::Result<Estimate> {
///         EstimatorKind::Linear.estimate(df, group, treated, outcome, adjustment)
///     }
/// }
///
/// assert_eq!(PinnedLinear.name(), "pinned-linear-v1");
/// ```
pub trait Estimator: Send + Sync {
    /// Stable identifier used in cache keys and labels.
    fn name(&self) -> &str;

    /// Estimate the CATE of `treated` vs. control within `group`, adjusting
    /// for the backdoor set `adjustment`.
    fn estimate(
        &self,
        df: &DataFrame,
        group: &Mask,
        treated: &Mask,
        outcome: &str,
        adjustment: &[String],
    ) -> Result<Estimate>;

    /// [`estimate`](Self::estimate) with an [`EstimateCtx`]: an explicit
    /// worker count, hot-path cost accounting, and (for index-aware
    /// estimators) access to the engine's match-index cache. The default
    /// implementation ignores the context and delegates to
    /// [`estimate`](Self::estimate), so custom estimators keep working
    /// unchanged; the built-in [`EstimatorKind`] overrides it to thread the
    /// context into the columnar kernels.
    fn estimate_with_ctx(
        &self,
        ctx: &mut EstimateCtx<'_>,
        df: &DataFrame,
        group: &Mask,
        treated: &Mask,
        outcome: &str,
        adjustment: &[String],
    ) -> Result<Estimate> {
        let _ = ctx;
        self.estimate(df, group, treated, outcome, adjustment)
    }
}

impl Estimator for EstimatorKind {
    fn name(&self) -> &str {
        match self {
            EstimatorKind::Linear => "linear",
            EstimatorKind::Stratified => "stratified",
            EstimatorKind::Ipw => "ipw",
            EstimatorKind::Aipw => "aipw",
            EstimatorKind::Matching => "matching",
        }
    }

    fn estimate(
        &self,
        df: &DataFrame,
        group: &Mask,
        treated: &Mask,
        outcome: &str,
        adjustment: &[String],
    ) -> Result<Estimate> {
        estimate_cate(*self, df, group, treated, outcome, adjustment)
    }

    fn estimate_with_ctx(
        &self,
        ctx: &mut EstimateCtx<'_>,
        df: &DataFrame,
        group: &Mask,
        treated: &Mask,
        outcome: &str,
        adjustment: &[String],
    ) -> Result<Estimate> {
        let EstimateCtx {
            workers,
            stats,
            index_cache,
        } = ctx;
        let workers = *workers;
        match self {
            EstimatorKind::Linear => {
                linear::estimate_with(df, group, treated, outcome, adjustment, workers, stats)
            }
            EstimatorKind::Stratified => {
                stratified::estimate(df, group, treated, outcome, adjustment)
            }
            EstimatorKind::Ipw => {
                ipw::estimate_with(df, group, treated, outcome, adjustment, workers, stats)
            }
            EstimatorKind::Aipw => {
                aipw::estimate_with(df, group, treated, outcome, adjustment, workers, stats)
            }
            EstimatorKind::Matching => {
                // One KD-tree index per (subgroup, adjustment set), shared
                // across every intervention swept against this subgroup.
                let shared;
                let index = match index_cache {
                    Some((cache, group_fp)) => {
                        shared = cache.get_or_build(
                            *group_fp, df, group, outcome, adjustment, workers, stats,
                        )?;
                        Some(&*shared)
                    }
                    None => None,
                };
                let params = matching::MatchParams {
                    index,
                    strategy: matching::MatchStrategy::Auto,
                    workers,
                };
                matching::estimate_with(df, group, treated, outcome, adjustment, &params, stats)
            }
        }
    }
}

/// Estimate the CATE of `treated` vs. control within `group`.
///
/// * `group` — rows of the subpopulation (full-frame mask).
/// * `treated` — rows satisfying the intervention pattern (full-frame mask;
///   only its intersection with `group` matters).
/// * `adjustment` — covariate column names (the backdoor set `Z`).
pub fn estimate_cate(
    kind: EstimatorKind,
    df: &DataFrame,
    group: &Mask,
    treated: &Mask,
    outcome: &str,
    adjustment: &[String],
) -> Result<Estimate> {
    match kind {
        EstimatorKind::Linear => linear::estimate(df, group, treated, outcome, adjustment),
        EstimatorKind::Stratified => stratified::estimate(df, group, treated, outcome, adjustment),
        EstimatorKind::Ipw => ipw::estimate(df, group, treated, outcome, adjustment),
        EstimatorKind::Aipw => aipw::estimate(df, group, treated, outcome, adjustment),
        EstimatorKind::Matching => matching::estimate(df, group, treated, outcome, adjustment),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parse() {
        for kind in EstimatorKind::ALL {
            assert_eq!(EstimatorKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(EstimatorKind::parse("bogus"), None);
    }

    #[test]
    fn default_is_the_paper_estimator() {
        assert_eq!(EstimatorKind::default(), EstimatorKind::Linear);
        assert_eq!(EstimatorKind::default().name(), "linear");
    }
}
