//! CATE estimation under backdoor adjustment.
//!
//! Both estimators compute `CATE(T, O | B)` (Section 3 of the paper): the
//! expected difference in outcome between treated and control rows of a
//! subgroup, adjusting for a confounder set `Z` identified from the causal
//! DAG.
//!
//! * [`linear`] — OLS with a treatment indicator and one-hot-encoded
//!   covariates; equivalent to DoWhy's `backdoor.linear_regression`, the
//!   estimator used by the paper's reference implementation.
//! * [`stratified`] — exact stratification on the joint values of `Z`
//!   (numeric covariates quantile-binned), i.e. the literal adjustment
//!   formula; used as an ablation and as ground-truth cross-check.
//! * [`ipw`] — inverse propensity weighting with an IRLS logistic
//!   propensity model; the third member of DoWhy's backdoor trio.

pub(crate) mod design;
pub mod ipw;
pub mod linear;
pub mod stratified;

use faircap_table::{DataFrame, Mask};

use crate::error::Result;

/// A treatment-effect estimate with inference statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Point estimate of the (conditional) average treatment effect.
    pub cate: f64,
    /// Standard error of the estimate.
    pub std_err: f64,
    /// t-statistic (`cate / std_err`).
    pub t_stat: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Number of treated rows used.
    pub n_treated: usize,
    /// Number of control rows used.
    pub n_control: usize,
}

impl Estimate {
    /// Whether the estimate is statistically significant at level `alpha`.
    pub fn is_significant(&self, alpha: f64) -> bool {
        self.p_value <= alpha
    }
}

/// Which estimator to use; see module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EstimatorKind {
    /// OLS linear adjustment (paper default).
    #[default]
    Linear,
    /// Exact stratification on the adjustment set.
    Stratified,
    /// Inverse propensity weighting (Hájek-normalized).
    Ipw,
}

/// Minimum rows per arm below which an estimate is refused. The paper
/// requires statistically significant interventions; tiny arms make the
/// inference meaningless.
pub const MIN_ARM_SIZE: usize = 5;

/// A pluggable CATE estimator.
///
/// [`EstimatorKind`] implements this for the three built-in estimators;
/// downstream crates can implement it to bring their own (e.g. doubly-robust
/// AIPW) and pass it per solve request without rebuilding a session. The
/// [`CateEngine`](crate::cate::CateEngine) caches estimates keyed by
/// [`Estimator::name`], so implementations must return a name that uniquely
/// identifies the estimator's behaviour.
pub trait Estimator: Send + Sync {
    /// Stable identifier used in cache keys and labels.
    fn name(&self) -> &str;

    /// Estimate the CATE of `treated` vs. control within `group`, adjusting
    /// for the backdoor set `adjustment`.
    fn estimate(
        &self,
        df: &DataFrame,
        group: &Mask,
        treated: &Mask,
        outcome: &str,
        adjustment: &[String],
    ) -> Result<Estimate>;
}

impl Estimator for EstimatorKind {
    fn name(&self) -> &str {
        match self {
            EstimatorKind::Linear => "linear",
            EstimatorKind::Stratified => "stratified",
            EstimatorKind::Ipw => "ipw",
        }
    }

    fn estimate(
        &self,
        df: &DataFrame,
        group: &Mask,
        treated: &Mask,
        outcome: &str,
        adjustment: &[String],
    ) -> Result<Estimate> {
        estimate_cate(*self, df, group, treated, outcome, adjustment)
    }
}

/// Estimate the CATE of `treated` vs. control within `group`.
///
/// * `group` — rows of the subpopulation (full-frame mask).
/// * `treated` — rows satisfying the intervention pattern (full-frame mask;
///   only its intersection with `group` matters).
/// * `adjustment` — covariate column names (the backdoor set `Z`).
pub fn estimate_cate(
    kind: EstimatorKind,
    df: &DataFrame,
    group: &Mask,
    treated: &Mask,
    outcome: &str,
    adjustment: &[String],
) -> Result<Estimate> {
    match kind {
        EstimatorKind::Linear => linear::estimate(df, group, treated, outcome, adjustment),
        EstimatorKind::Stratified => stratified::estimate(df, group, treated, outcome, adjustment),
        EstimatorKind::Ipw => ipw::estimate(df, group, treated, outcome, adjustment),
    }
}
