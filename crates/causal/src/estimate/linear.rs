//! OLS linear-adjustment CATE estimator.
//!
//! Fits `O ~ 1 + T + Z` on the subgroup rows, where `T` is the 0/1 treatment
//! indicator and `Z` the one-hot-encoded adjustment covariates (first level
//! dropped per covariate; numeric covariates enter directly). The coefficient
//! on `T` is the CATE; its standard error comes from `σ̂²(XᵀX)⁻¹`.

use super::{kernel, Estimate, HotStats, MIN_ARM_SIZE};
use crate::error::{CausalError, Result};
use crate::linalg::{inverse_spd, solve_spd};
use faircap_table::stats::t_sf_two_sided;
use faircap_table::{DataFrame, Mask};
use std::time::Instant;

/// Estimate the CATE by linear regression with automatic worker
/// selection. See module docs.
pub fn estimate(
    df: &DataFrame,
    group: &Mask,
    treated: &Mask,
    outcome: &str,
    adjustment: &[String],
) -> Result<Estimate> {
    let workers = kernel::auto_workers(group.count());
    estimate_with(
        df,
        group,
        treated,
        outcome,
        adjustment,
        workers,
        &mut HotStats::default(),
    )
}

/// Linear-regression estimate over the columnar kernels, with an explicit
/// worker count and hot-path cost accounting.
pub fn estimate_with(
    df: &DataFrame,
    group: &Mask,
    treated: &Mask,
    outcome: &str,
    adjustment: &[String],
    workers: usize,
    stats: &mut HotStats,
) -> Result<Estimate> {
    let n = group.count();
    let n_treated = group.intersect_count(treated);
    let n_control = n - n_treated;
    if n_treated < MIN_ARM_SIZE || n_control < MIN_ARM_SIZE {
        return Err(CausalError::Estimation(format!(
            "insufficient overlap: {n_treated} treated / {n_control} control"
        )));
    }

    // Column layout: [intercept, T, covariate blocks...], assembled
    // column-major with the fused word-at-a-time gather.
    let t0 = Instant::now();
    let x = kernel::build_columns(
        df,
        adjustment,
        group,
        Some(treated),
        workers,
        &mut stats.tasks,
    )?;
    let y = kernel::gather_outcome(df, outcome, group)?;
    stats.build_ns += t0.elapsed().as_nanos() as u64;
    let k = x.k();
    if n <= k + 1 {
        return Err(CausalError::Estimation(format!(
            "too few rows ({n}) for {k} regressors"
        )));
    }

    let gram = kernel::gram_columns(x.cols(), workers, &mut stats.tasks);
    let xty = kernel::xty_columns(x.cols(), &y, workers, &mut stats.tasks);
    let beta = solve_spd(&gram, &xty)?;

    // Residual variance and the (1,1) entry of (XᵀX)⁻¹ for the SE of T.
    let fitted = kernel::mat_vec_columns(x.cols(), &beta);
    let rss: f64 = y
        .iter()
        .zip(&fitted)
        .map(|(yi, fi)| (yi - fi) * (yi - fi))
        .sum();
    let dof = (n - k) as f64;
    let sigma2 = rss / dof;
    let inv = inverse_spd(&gram)?;
    let var_t = sigma2 * inv.get(1, 1);
    let cate = beta[1];
    if var_t <= 0.0 || !var_t.is_finite() {
        return Err(CausalError::Estimation(
            "degenerate variance for treatment coefficient".into(),
        ));
    }
    let std_err = var_t.sqrt();
    let t_stat = cate / std_err;
    Ok(Estimate {
        cate,
        std_err,
        t_stat,
        p_value: t_sf_two_sided(t_stat, dof),
        n_treated,
        n_control,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use faircap_table::DataFrame;

    /// Confounded data where the truth is known exactly:
    /// z ∈ {0,1}; T more likely when z=1; O = 10·T + 50·z (no noise).
    /// Naive difference-in-means is biased upward; adjustment recovers 10.
    fn confounded_frame() -> (DataFrame, Mask) {
        let mut z = Vec::new();
        let mut t = Vec::new();
        let mut o = Vec::new();
        // z=0: 40 rows, 10 treated; z=1: 40 rows, 30 treated.
        for i in 0..40 {
            z.push("low");
            let ti = i < 10;
            t.push(ti);
            o.push(if ti { 10.0 } else { 0.0 });
        }
        for i in 0..40 {
            z.push("high");
            let ti = i < 30;
            t.push(ti);
            o.push(50.0 + if ti { 10.0 } else { 0.0 });
        }
        let treated = Mask::from_bools(&t);
        let df = DataFrame::builder()
            .cat("z", &z)
            .bool("t", t)
            .float("o", o)
            .build()
            .unwrap();
        (df, treated)
    }

    #[test]
    fn recovers_true_effect_under_confounding() {
        let (df, treated) = confounded_frame();
        let all = Mask::ones(df.n_rows());
        let est = estimate(&df, &all, &treated, "o", &["z".into()]).unwrap();
        assert!((est.cate - 10.0).abs() < 1e-8, "cate = {}", est.cate);
        assert!(est.p_value < 1e-6);
        assert_eq!(est.n_treated, 40);
        assert_eq!(est.n_control, 40);
    }

    #[test]
    fn naive_estimate_is_biased() {
        let (df, treated) = confounded_frame();
        let all = Mask::ones(df.n_rows());
        // No adjustment: E[O|T=1] = (10·10 + 30·60)/40 = 47.5,
        // E[O|T=0] = (30·0 + 10·50)/40 = 12.5 → naive effect 35.
        let est = estimate(&df, &all, &treated, "o", &[]).unwrap();
        assert!((est.cate - 35.0).abs() < 1e-8, "naive = {}", est.cate);
    }

    #[test]
    fn numeric_covariate_adjustment() {
        // O = 5·T + 2·age, T correlated with age.
        let n = 200;
        let mut age = Vec::new();
        let mut t = Vec::new();
        let mut o = Vec::new();
        for i in 0..n {
            let a = 20 + (i % 40) as i64;
            let ti = a >= 40;
            age.push(a);
            t.push(ti);
            o.push(5.0 * ti as i64 as f64 + 2.0 * a as f64);
        }
        let treated = Mask::from_bools(&t);
        let df = DataFrame::builder()
            .int("age", age)
            .float("o", o)
            .build()
            .unwrap();
        let all = Mask::ones(n);
        let est = estimate(&df, &all, &treated, "o", &["age".into()]).unwrap();
        assert!((est.cate - 5.0).abs() < 1e-8, "cate = {}", est.cate);
    }

    #[test]
    fn subgroup_estimation_restricts_rows() {
        let (df, treated) = confounded_frame();
        // Only the z=low stratum: effect is exactly 10 with no confounding.
        let low = faircap_table::Pattern::of_eq(&[("z", "low".into())])
            .coverage(&df)
            .unwrap();
        let est = estimate(&df, &low, &treated, "o", &[]).unwrap();
        assert!((est.cate - 10.0).abs() < 1e-8);
        assert_eq!(est.n_treated + est.n_control, 40);
    }

    #[test]
    fn insufficient_overlap_rejected() {
        let df = DataFrame::builder()
            .float("o", vec![1.0; 20])
            .build()
            .unwrap();
        let all = Mask::ones(20);
        let treated = Mask::from_indices(20, &[0, 1]); // 2 treated < MIN_ARM_SIZE
        assert!(estimate(&df, &all, &treated, "o", &[]).is_err());
        let all_treated = Mask::ones(20);
        assert!(estimate(&df, &all, &all_treated, "o", &[]).is_err());
    }

    #[test]
    fn categorical_outcome_rejected() {
        let df = DataFrame::builder()
            .cat("o", &["a"; 20])
            .bool("t", vec![true; 20])
            .build()
            .unwrap();
        let all = Mask::ones(20);
        let treated = Mask::from_indices(20, &(0..10).collect::<Vec<_>>());
        assert!(estimate(&df, &all, &treated, "o", &[]).is_err());
    }

    #[test]
    fn noisy_effect_significant_and_null_not() {
        // Deterministic pseudo-noise (no rand dependency needed here).
        let n = 400;
        let mut t = Vec::new();
        let mut o_effect = Vec::new();
        let mut o_null = Vec::new();
        let mut state = 0x12345678u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        };
        for i in 0..n {
            let ti = i % 2 == 0;
            t.push(ti);
            let noise = rng() * 4.0;
            o_effect.push(if ti { 8.0 } else { 0.0 } + noise);
            o_null.push(noise);
        }
        let treated = Mask::from_bools(&t);
        let all = Mask::ones(n);
        let df = DataFrame::builder()
            .float("oe", o_effect)
            .float("on", o_null)
            .build()
            .unwrap();
        let sig = estimate(&df, &all, &treated, "oe", &[]).unwrap();
        assert!(sig.is_significant(0.01), "p = {}", sig.p_value);
        let null = estimate(&df, &all, &treated, "on", &[]).unwrap();
        assert!(!null.is_significant(0.01), "p = {}", null.p_value);
    }
}
