//! Naive reference implementations of the estimator hot path.
//!
//! These are the straightforward row-major / per-entry loops the blocked
//! columnar kernels in [`kernel`](super::kernel) replaced. They are kept —
//! and kept public — for two reasons: `tests/prop_kernels.rs` property-tests
//! every kernel against its naive counterpart **bit for bit** (the kernels
//! promise identical f64 results for any worker count and block size), and
//! `estimator_bench` measures the kernels' speedups against them so the
//! committed `BENCH_estimators.json` records the win, not just the absolute
//! numbers.
//!
//! Nothing here is reachable from the serving hot path; correctness of the
//! fast path is what these functions are *for*.

use super::{design, normal_inference, Estimate, MIN_ARM_SIZE};
use crate::error::{CausalError, Result};
use crate::estimate::ipw::CLIP;
use crate::linalg::{inverse_spd, solve_spd, Matrix};
use faircap_table::stats::t_sf_two_sided;
use faircap_table::{DataFrame, Mask};

/// Row-by-row design assembly (`[1, T?, Z…]`), transposed into column
/// vectors so results compare directly against
/// [`kernel::build_columns`](super::kernel::build_columns).
pub fn design_columns_naive(
    df: &DataFrame,
    adjustment: &[String],
    group: &Mask,
    treated: Option<&Mask>,
) -> Result<Vec<Vec<f64>>> {
    let rows = group.to_indices();
    let n = rows.len();
    let (blocks, z_width) = design::build_blocks(df, adjustment, group)?;
    let t_cols = treated.is_some() as usize;
    let k = 1 + t_cols + z_width;
    let mut cols = vec![vec![0.0f64; n]; k];
    let mut scratch = vec![0.0f64; z_width];
    for (r, &row) in rows.iter().enumerate() {
        cols[0][r] = 1.0;
        if let Some(t) = treated {
            cols[1][r] = if t.get(row) { 1.0 } else { 0.0 };
        }
        scratch.fill(0.0);
        let mut offset = 0;
        for b in &blocks {
            b.fill(row, &mut scratch[offset..offset + b.width()]);
            offset += b.width();
        }
        for (j, &v) in scratch.iter().enumerate() {
            cols[1 + t_cols + j][r] = v;
        }
    }
    Ok(cols)
}

/// Per-entry `XᵀX`: one ascending-row accumulator per `(i, j)` entry, no
/// zero-skipping — the order the blocked kernel reproduces exactly.
pub fn gram_naive(cols: &[Vec<f64>]) -> Matrix {
    let k = cols.len();
    let n = cols.first().map_or(0, Vec::len);
    let mut g = Matrix::zeros(k, k);
    for j in 0..k {
        for i in 0..=j {
            let mut acc = 0.0f64;
            for (x, y) in cols[i].iter().take(n).zip(&cols[j]) {
                acc += x * y;
            }
            g.set(i, j, acc);
            g.set(j, i, acc);
        }
    }
    g
}

/// Per-entry `Xᵀy` in ascending row order.
pub fn xty_naive(cols: &[Vec<f64>], y: &[f64]) -> Vec<f64> {
    cols.iter()
        .map(|cj| {
            let mut a = 0.0f64;
            for (x, v) in cj.iter().zip(y) {
                a += x * v;
            }
            a
        })
        .collect()
}

/// One IRLS step's reductions, per entry: weighted gram terms accumulate as
/// `(w·xᵢ)·xⱼ`, score entries as `xⱼ·r`, both in ascending row order.
pub fn weighted_gram_score_naive(
    cols: &[Vec<f64>],
    w: &[f64],
    resid: &[f64],
) -> (Matrix, Vec<f64>) {
    let k = cols.len();
    let n = cols.first().map_or(0, Vec::len);
    let mut g = Matrix::zeros(k, k);
    let mut score = vec![0.0f64; k];
    for j in 0..k {
        for i in 0..=j {
            let mut acc = 0.0f64;
            for r in 0..n {
                acc += (w[r] * cols[i][r]) * cols[j][r];
            }
            g.set(i, j, acc);
            g.set(j, i, acc);
        }
        let mut s = 0.0f64;
        for r in 0..n {
            s += cols[j][r] * resid[r];
        }
        score[j] = s;
    }
    (g, score)
}

/// Arm-restricted `XᵀX` / `Xᵀy` with a dense 0/1 arm multiplier: gram terms
/// `(m·xᵢ)·xⱼ`, right-hand side `(m·xⱼ)·y`, ascending row order.
pub fn arm_gram_xty_naive(cols: &[Vec<f64>], y: &[f64], arm: &[f64]) -> (Matrix, Vec<f64>) {
    let k = cols.len();
    let n = cols.first().map_or(0, Vec::len);
    let mut g = Matrix::zeros(k, k);
    let mut xty = vec![0.0f64; k];
    for j in 0..k {
        for i in 0..=j {
            let mut acc = 0.0f64;
            for r in 0..n {
                acc += (arm[r] * cols[i][r]) * cols[j][r];
            }
            g.set(i, j, acc);
            g.set(j, i, acc);
        }
        let mut rhs = 0.0f64;
        for r in 0..n {
            rhs += (arm[r] * cols[j][r]) * y[r];
        }
        xty[j] = rhs;
    }
    (g, xty)
}

/// Row-major `X·β`: per row, an ascending-column dot product.
pub fn mat_vec_naive(cols: &[Vec<f64>], beta: &[f64]) -> Vec<f64> {
    let k = cols.len();
    let n = cols.first().map_or(0, Vec::len);
    let mut out = vec![0.0f64; n];
    for (r, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0f64;
        for c in 0..k {
            acc += cols[c][r] * beta[c];
        }
        *o = acc;
    }
    out
}

/// The pre-kernel OLS estimator: row-major design assembly and dense
/// `Matrix` reductions. Bench baseline for `linear`.
pub fn linear_naive(
    df: &DataFrame,
    group: &Mask,
    treated: &Mask,
    outcome: &str,
    adjustment: &[String],
) -> Result<Estimate> {
    let in_group: Vec<usize> = group.to_indices();
    let n = in_group.len();
    let n_treated = group.intersect_count(treated);
    let n_control = n - n_treated;
    if n_treated < MIN_ARM_SIZE || n_control < MIN_ARM_SIZE {
        return Err(CausalError::Estimation(format!(
            "insufficient overlap: {n_treated} treated / {n_control} control"
        )));
    }

    // Column layout: [intercept, T, covariate blocks...].
    let (blocks, z_width) = design::build_blocks(df, adjustment, group)?;
    let k: usize = 2 + z_width;
    if n <= k + 1 {
        return Err(CausalError::Estimation(format!(
            "too few rows ({n}) for {k} regressors"
        )));
    }

    let outcome_col = df.column(outcome)?;
    let mut x = Matrix::zeros(n, k);
    let mut y = vec![0.0; n];
    for (r, &row) in in_group.iter().enumerate() {
        y[r] = outcome_col.get_f64(row).ok_or_else(|| {
            CausalError::Estimation(format!("outcome `{outcome}` is not numeric"))
        })?;
        let xr = x.row_mut(r);
        xr[0] = 1.0;
        xr[1] = if treated.get(row) { 1.0 } else { 0.0 };
        let mut offset = 2;
        for b in &blocks {
            b.fill(row, &mut xr[offset..offset + b.width()]);
            offset += b.width();
        }
    }

    let gram = x.gram();
    let xty = x.t_mul_vec(&y);
    let beta = solve_spd(&gram, &xty)?;

    let fitted = x.mul_vec(&beta);
    let rss: f64 = y
        .iter()
        .zip(&fitted)
        .map(|(yi, fi)| (yi - fi) * (yi - fi))
        .sum();
    let dof = (n - k) as f64;
    let sigma2 = rss / dof;
    let inv = inverse_spd(&gram)?;
    let var_t = sigma2 * inv.get(1, 1);
    let cate = beta[1];
    if var_t <= 0.0 || !var_t.is_finite() {
        return Err(CausalError::Estimation(
            "degenerate variance for treatment coefficient".into(),
        ));
    }
    let std_err = var_t.sqrt();
    let t_stat = cate / std_err;
    Ok(Estimate {
        cate,
        std_err,
        t_stat,
        p_value: t_sf_two_sided(t_stat, dof),
        n_treated,
        n_control,
    })
}

/// The pre-kernel IPW estimator: row-major IRLS with per-row gram
/// accumulation (and its original zero-skip). Bench baseline for `ipw`.
pub fn ipw_naive(
    df: &DataFrame,
    group: &Mask,
    treated: &Mask,
    outcome: &str,
    adjustment: &[String],
) -> Result<Estimate> {
    const MAX_IRLS_ITERS: usize = 25;
    let rows: Vec<usize> = group.to_indices();
    let n = rows.len();
    let n_treated = group.intersect_count(treated);
    let n_control = n - n_treated;
    if n_treated < MIN_ARM_SIZE || n_control < MIN_ARM_SIZE {
        return Err(CausalError::Estimation(format!(
            "insufficient overlap: {n_treated} treated / {n_control} control"
        )));
    }

    let y = design::outcome_values(df, outcome, &rows)?;
    let t: Vec<bool> = rows.iter().map(|&r| treated.get(r)).collect();
    let x = design::build_intercept_design(df, adjustment, group, &rows)?;

    // Row-major IRLS.
    let k = x.cols();
    let mut beta = vec![0.0; k];
    let mut probs: Vec<f64> = vec![0.5; n];
    for _ in 0..MAX_IRLS_ITERS {
        let mut gram = Matrix::zeros(k, k);
        let mut score = vec![0.0; k];
        for r in 0..n {
            let row = x.row(r);
            let p = probs[r];
            let w = (p * (1.0 - p)).max(1e-6_f64);
            for i in 0..k {
                score[i] += row[i] * ((t[r] as u8 as f64) - p);
                for j in i..k {
                    let v = w * row[i] * row[j];
                    gram.set(i, j, gram.get(i, j) + v);
                }
            }
        }
        for i in 0..k {
            for j in 0..i {
                gram.set(i, j, gram.get(j, i));
            }
        }
        let delta = solve_spd(&gram, &score)?;
        let step: f64 = delta.iter().map(|d| d * d).sum::<f64>().sqrt();
        for (b, d) in beta.iter_mut().zip(&delta) {
            *b += d;
        }
        for (r, p) in probs.iter_mut().enumerate() {
            let eta: f64 = x.row(r).iter().zip(&beta).map(|(a, b)| a * b).sum();
            *p = 1.0 / (1.0 + (-eta).exp());
        }
        if step < 1e-8 {
            break;
        }
    }

    // Hájek contrast + linearization variance, as in the live estimator.
    let mut sw_t = 0.0;
    let mut swy_t = 0.0;
    let mut sw_c = 0.0;
    let mut swy_c = 0.0;
    for i in 0..n {
        let p = probs[i].clamp(CLIP, 1.0 - CLIP);
        if t[i] {
            let w = 1.0 / p;
            sw_t += w;
            swy_t += w * y[i];
        } else {
            let w = 1.0 / (1.0 - p);
            sw_c += w;
            swy_c += w * y[i];
        }
    }
    let mean_t = swy_t / sw_t;
    let mean_c = swy_c / sw_c;
    let cate = mean_t - mean_c;
    let mut var_t = 0.0;
    let mut var_c = 0.0;
    for i in 0..n {
        let p = probs[i].clamp(CLIP, 1.0 - CLIP);
        if t[i] {
            let w = 1.0 / p;
            var_t += w * w * (y[i] - mean_t) * (y[i] - mean_t);
        } else {
            let w = 1.0 / (1.0 - p);
            var_c += w * w * (y[i] - mean_c) * (y[i] - mean_c);
        }
    }
    let var = var_t / (sw_t * sw_t) + var_c / (sw_c * sw_c);
    let (std_err, t_stat, p_value) = normal_inference(cate, var);
    Ok(Estimate {
        cate,
        std_err,
        t_stat,
        p_value,
        n_treated,
        n_control,
    })
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::estimate::kernel;

    fn fixture() -> (DataFrame, Mask, Mask) {
        let mut z = Vec::new();
        let mut t = Vec::new();
        let mut o = Vec::new();
        for i in 0..60 {
            z.push(if i % 3 == 0 { "a" } else { "b" });
            t.push(i % 2 == 0);
            o.push((i % 7) as f64 * 1.25 - 3.0);
        }
        let treated = Mask::from_bools(&t);
        let df = DataFrame::builder()
            .cat("z", &z)
            .float("o", o)
            .build()
            .unwrap();
        let group = Mask::ones(60);
        (df, group, treated)
    }

    #[test]
    fn naive_design_matches_kernel_bitwise() {
        let (df, group, treated) = fixture();
        let adj = vec!["z".to_string()];
        for with_t in [None, Some(&treated)] {
            let naive = design_columns_naive(&df, &adj, &group, with_t).unwrap();
            let fast = kernel::build_columns(&df, &adj, &group, with_t, 1, &mut 0).unwrap();
            assert_eq!(naive.len(), fast.k());
            for (a, b) in naive.iter().zip(fast.cols()) {
                let a_bits: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
                let b_bits: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
                assert_eq!(a_bits, b_bits);
            }
        }
    }

    #[test]
    fn naive_reductions_match_kernels_bitwise() {
        let (df, group, treated) = fixture();
        let adj = vec!["z".to_string()];
        let x = kernel::build_columns(&df, &adj, &group, Some(&treated), 1, &mut 0).unwrap();
        let y = kernel::gather_outcome(&df, "o", &group).unwrap();
        let k = x.k();

        let g_naive = gram_naive(x.cols());
        let g_fast = kernel::gram_columns(x.cols(), 1, &mut 0);
        let xty_n = xty_naive(x.cols(), &y);
        let xty_f = kernel::xty_columns(x.cols(), &y, 1, &mut 0);
        for i in 0..k {
            assert_eq!(xty_n[i].to_bits(), xty_f[i].to_bits());
            for j in 0..k {
                assert_eq!(g_naive.get(i, j).to_bits(), g_fast.get(i, j).to_bits());
            }
        }

        let w: Vec<f64> = (0..y.len()).map(|r| 0.1 + (r % 5) as f64 * 0.2).collect();
        let resid: Vec<f64> = y.iter().map(|v| v * 0.5 - 1.0).collect();
        let (wg_n, s_n) = weighted_gram_score_naive(x.cols(), &w, &resid);
        let (wg_f, s_f) = kernel::weighted_gram_score(x.cols(), &w, &resid, 1, &mut 0);
        let arm: Vec<f64> = (0..y.len()).map(|r| (r % 2 == 0) as u8 as f64).collect();
        let (ag_n, ay_n) = arm_gram_xty_naive(x.cols(), &y, &arm);
        let (ag_f, ay_f) = kernel::arm_gram_xty(x.cols(), &y, &arm, 1, &mut 0);
        for i in 0..k {
            assert_eq!(s_n[i].to_bits(), s_f[i].to_bits());
            assert_eq!(ay_n[i].to_bits(), ay_f[i].to_bits());
            for j in 0..k {
                assert_eq!(wg_n.get(i, j).to_bits(), wg_f.get(i, j).to_bits());
                assert_eq!(ag_n.get(i, j).to_bits(), ag_f.get(i, j).to_bits());
            }
        }

        let beta: Vec<f64> = (0..k).map(|c| 0.3 * c as f64 - 0.5).collect();
        let mv_n = mat_vec_naive(x.cols(), &beta);
        let mv_f = kernel::mat_vec_columns(x.cols(), &beta);
        for (a, b) in mv_n.iter().zip(&mv_f) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn naive_estimators_agree_with_live_ones() {
        let (df, group, treated) = fixture();
        let adj = vec!["z".to_string()];
        let lin_n = linear_naive(&df, &group, &treated, "o", &adj).unwrap();
        let lin_f = crate::estimate::linear::estimate(&df, &group, &treated, "o", &adj).unwrap();
        assert!((lin_n.cate - lin_f.cate).abs() < 1e-12);
        let ipw_n = ipw_naive(&df, &group, &treated, "o", &adj).unwrap();
        let ipw_f = crate::estimate::ipw::estimate(&df, &group, &treated, "o", &adj).unwrap();
        assert!((ipw_n.cate - ipw_f.cate).abs() < 1e-9);
    }
}
