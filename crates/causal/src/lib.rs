//! # faircap-causal
//!
//! Causal-inference substrate for the FairCap reproduction (Section 3 of the
//! paper), built from scratch:
//!
//! * [`graph::Dag`] — Pearl-style causal DAGs with cycle-checked insertion.
//! * [`dsep`] — d-separation via the moralized-ancestral-graph criterion.
//! * [`backdoor`] — backdoor-criterion validation and adjustment-set search.
//! * [`estimate`] — pluggable CATE estimators ([`Estimator`]): OLS linear
//!   adjustment (the paper's DoWhy default), exact stratification, IPW,
//!   doubly-robust AIPW, and k-NN matching — assumptions and trade-offs
//!   are documented in `docs/estimators.md` at the repository root.
//! * [`cate::CateEngine`] — cached high-level CATE queries for rules.
//! * [`exec`] — deterministic work-stealing executor (re-exported as
//!   `faircap_core::exec`) driving both solve-level fan-out and the
//!   within-estimate parallelism of the columnar kernels.
//! * [`discovery`] — PC-stable causal discovery (Table 6's "PC DAG").
//! * [`scm`] — structural causal models for generating the synthetic
//!   Stack Overflow / German Credit stand-ins with known ground truth.
//! * [`truth`] — ground-truth recovery checks ([`truth::Recovery`]) used by
//!   the `faircap-scenario` generator's planted-effect validation.

#![warn(missing_docs)]

pub mod backdoor;
pub mod cate;
pub mod dsep;
pub mod error;
pub mod estimate;
pub mod exec;
pub mod graph;
pub mod linalg;
pub mod scm;
pub mod truth;

pub mod discovery;

pub use backdoor::{find_adjustment_set, find_adjustment_set_names, is_valid_backdoor};
pub use cate::{
    CacheStats, CateEngine, CateEngineState, CateQuery, EngineHotStats, MatchIndexCache,
};
pub use dsep::{d_separated, d_separated_names};
pub use error::{CausalError, Result};
pub use estimate::matching::{MatchIndex, MatchParams, MatchStrategy};
pub use estimate::{estimate_cate, Estimate, EstimateCtx, Estimator, EstimatorKind, HotStats};
pub use exec::ExecStats;
pub use graph::{Dag, NodeId};
pub use scm::Scm;
pub use truth::Recovery;
