//! Criterion counterpart of Figure 3: end-to-end FairCap runtime per problem
//! setting (the by-step breakdown is printed by the `fig3` binary; criterion
//! measures the stable totals). Uses a 6K-row sample — shape, not absolute
//! seconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faircap_bench::{nine_variants, session_of, BENCH_ROWS, BENCH_SEED};
use faircap_core::{FairnessKind, SolveRequest};
use faircap_data::so;
use std::hint::black_box;

fn bench_settings(c: &mut Criterion) {
    let ds = so::generate(BENCH_ROWS, BENCH_SEED);
    let mut group = c.benchmark_group("fig3_settings");
    group.sample_size(10);
    for (label, cfg) in nine_variants(FairnessKind::StatisticalParity, 10_000.0, 0.5, 0.5) {
        group.bench_with_input(BenchmarkId::from_parameter(&label), &cfg, |b, cfg| {
            // Cold-start semantics: session built inside the iteration.
            b.iter(|| {
                let session = session_of(&ds).unwrap();
                black_box(session.solve(&SolveRequest::from(cfg.clone())).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_warm_resolve(c: &mut Criterion) {
    // The serving scenario the session API exists for: constraints change,
    // the session (and its CATE caches) persists.
    let ds = so::generate(BENCH_ROWS, BENCH_SEED);
    let variants = nine_variants(FairnessKind::StatisticalParity, 10_000.0, 0.5, 0.5);
    let mut group = c.benchmark_group("fig3_warm_resolve");
    group.sample_size(10);
    let session = session_of(&ds).unwrap();
    for (_, cfg) in &variants {
        session.solve(&SolveRequest::from(cfg.clone())).unwrap(); // warm up
    }
    group.bench_function(BenchmarkId::from_parameter("nine_variants_warm"), |b| {
        b.iter(|| {
            for (_, cfg) in &variants {
                black_box(session.solve(&SolveRequest::from(cfg.clone())).unwrap());
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_settings, bench_warm_resolve);
criterion_main!(benches);
