//! Criterion counterpart of Figure 3: end-to-end FairCap runtime per problem
//! setting (the by-step breakdown is printed by the `fig3` binary; criterion
//! measures the stable totals). Uses a 6K-row sample — shape, not absolute
//! seconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faircap_bench::{input_of, nine_variants, BENCH_ROWS, BENCH_SEED};
use faircap_core::{run, FairnessKind};
use faircap_data::so;
use std::hint::black_box;

fn bench_settings(c: &mut Criterion) {
    let ds = so::generate(BENCH_ROWS, BENCH_SEED);
    let input = input_of(&ds);
    let mut group = c.benchmark_group("fig3_settings");
    group.sample_size(10);
    for (label, cfg) in nine_variants(FairnessKind::StatisticalParity, 10_000.0, 0.5, 0.5) {
        group.bench_with_input(BenchmarkId::from_parameter(&label), &cfg, |b, cfg| {
            b.iter(|| black_box(run(&input, cfg)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_settings);
criterion_main!(benches);
