//! Ablation: the §5.2 positive-parent lattice pruning vs. exhaustive
//! enumeration of intervention patterns — how many CATE estimations does
//! the materialization rule save?

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faircap_bench::{BENCH_ROWS, BENCH_SEED};
use faircap_causal::{CateEngine, EstimatorKind};
use faircap_data::so;
use faircap_mining::{positive_lattice, single_attribute_items};
use faircap_table::Mask;
use std::hint::black_box;
use std::sync::Arc;

fn bench_lattice_pruning(c: &mut Criterion) {
    let ds = so::generate(BENCH_ROWS, BENCH_SEED);
    let df = Arc::new(ds.df.clone());
    let dag = Arc::new(ds.dag.clone());
    let all = Mask::ones(ds.df.n_rows());
    let items = single_attribute_items(&ds.df, &ds.mutable, &all, 24).unwrap();
    let mut group = c.benchmark_group("ablation_lattice_pruning");
    group.sample_size(10);

    // Pruned: only positive-CATE parents are expanded (the paper's rule).
    group.bench_function(BenchmarkId::from_parameter("positive_parent"), |b| {
        b.iter(|| {
            let engine = CateEngine::new(Arc::clone(&df), Arc::clone(&dag), "salary").unwrap();
            let nodes = positive_lattice(
                &items,
                2,
                |pattern, _| {
                    engine
                        .cate(&all, pattern, &EstimatorKind::Linear)
                        .map(|e| e.cate)
                },
                |&cate| cate > 0.0,
            );
            black_box(nodes.len())
        });
    });

    // Exhaustive: every node expands regardless of sign.
    group.bench_function(BenchmarkId::from_parameter("exhaustive"), |b| {
        b.iter(|| {
            let engine = CateEngine::new(Arc::clone(&df), Arc::clone(&dag), "salary").unwrap();
            let nodes = positive_lattice(
                &items,
                2,
                |pattern, _| {
                    engine
                        .cate(&all, pattern, &EstimatorKind::Linear)
                        .map(|e| e.cate)
                },
                |_| true,
            );
            black_box(nodes.len())
        });
    });
    group.finish();
}

fn bench_cost_policies(c: &mut Criterion) {
    use faircap_core::{CostModel, CostPolicy, FairCapConfig, SolveRequest};
    let ds = so::generate(BENCH_ROWS, BENCH_SEED);
    let mut group = c.benchmark_group("ablation_cost_policy");
    group.sample_size(10);
    let policies: [(&str, CostPolicy); 3] = [
        ("ignore", CostPolicy::Ignore),
        ("budget", CostPolicy::Budget { max_rule_cost: 5.0 }),
        ("penalize", CostPolicy::Penalize { weight: 0.5 }),
    ];
    for (name, policy) in policies {
        let cfg = FairCapConfig {
            cost_model: CostModel::with_default(2.0),
            cost_policy: policy,
            ..FairCapConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                let session = faircap_bench::session_of(&ds).unwrap();
                black_box(session.solve(&SolveRequest::from(cfg.clone())).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lattice_pruning, bench_cost_policies);
criterion_main!(benches);
