//! Ablation: every built-in CATE estimator (linear / stratified / IPW /
//! AIPW / matching) — cost of a single estimate and of a full FairCap run
//! under each. The quality side of the same comparison (German credit,
//! per-estimator cache stats) lives in the `ablation_estimators` bin.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faircap_bench::{session_of, BENCH_ROWS, BENCH_SEED};
use faircap_causal::{CateEngine, EstimatorKind};
use faircap_core::{FairCapConfig, SolveRequest};
use faircap_data::so;
use faircap_table::{Mask, Pattern, Value};
use std::hint::black_box;
use std::sync::Arc;

fn bench_single_estimate(c: &mut Criterion) {
    let ds = so::generate(BENCH_ROWS, BENCH_SEED);
    let df = Arc::new(ds.df.clone());
    let dag = Arc::new(ds.dag.clone());
    let all = Mask::ones(ds.df.n_rows());
    let pattern = Pattern::of_eq(&[("certifications", Value::from("yes"))]);
    let mut group = c.benchmark_group("ablation_single_cate");
    for kind in EstimatorKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    // Fresh engine per iteration so the cache cannot hide
                    // the estimator cost.
                    let engine =
                        CateEngine::new(Arc::clone(&df), Arc::clone(&dag), "salary").unwrap();
                    black_box(engine.cate(&all, &pattern, &kind))
                });
            },
        );
    }
    group.finish();
}

fn bench_full_run(c: &mut Criterion) {
    let ds = so::generate(BENCH_ROWS, BENCH_SEED);
    let mut group = c.benchmark_group("ablation_full_run");
    group.sample_size(10);
    for kind in EstimatorKind::ALL {
        let cfg = FairCapConfig {
            estimator: kind,
            ..FairCapConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    let session = session_of(&ds).unwrap();
                    black_box(session.solve(&SolveRequest::from(cfg.clone())).unwrap())
                });
            },
        );
    }
    group.finish();
}

fn bench_parallelism(c: &mut Criterion) {
    // §5.2 optimization (ii): parallel vs serial intervention mining.
    let ds = so::generate(BENCH_ROWS, BENCH_SEED);
    let mut group = c.benchmark_group("ablation_parallel_step2");
    group.sample_size(10);
    for parallel in [false, true] {
        let cfg = FairCapConfig {
            parallel,
            ..FairCapConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(if parallel { "parallel" } else { "serial" }),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    let session = session_of(&ds).unwrap();
                    black_box(session.solve(&SolveRequest::from(cfg.clone())).unwrap())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_estimate,
    bench_full_run,
    bench_parallelism
);
criterion_main!(benches);
