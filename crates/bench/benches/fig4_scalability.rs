//! Criterion counterpart of Figure 4: runtime vs dataset fraction (25–100%)
//! for the unconstrained and group-fairness settings, plus a worker-count
//! sweep of the Step-2 work-stealing executor on the full dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use faircap_bench::{session_of, BENCH_ROWS, BENCH_SEED};
use faircap_core::{FairCapConfig, FairnessConstraint, FairnessScope, SolveRequest};
use faircap_data::so;
use std::hint::black_box;

fn bench_fractions(c: &mut Criterion) {
    let full = so::generate(BENCH_ROWS, BENCH_SEED);
    let configs = [
        ("no_constraint", FairCapConfig::default()),
        (
            "group_sp",
            FairCapConfig {
                fairness: FairnessConstraint::StatisticalParity {
                    scope: FairnessScope::Group,
                    epsilon: 10_000.0,
                },
                ..FairCapConfig::default()
            },
        ),
    ];
    let mut group = c.benchmark_group("fig4_dataset_fraction");
    group.sample_size(10);
    for percent in [25u32, 50, 75, 100] {
        let ds = if percent == 100 {
            full.clone()
        } else {
            full.subsample(percent as f64 / 100.0, 7)
        };
        group.throughput(Throughput::Elements(ds.df.n_rows() as u64));
        for (name, cfg) in &configs {
            group.bench_with_input(BenchmarkId::new(*name, percent), &ds, |b, ds| {
                b.iter(|| {
                    let session = session_of(ds).unwrap();
                    black_box(session.solve(&SolveRequest::from(cfg.clone())).unwrap())
                });
            });
        }
    }
    group.finish();
}

/// Step-2 fan-out scaling: one cold session per measurement, solved with an
/// explicit executor worker count (1 = serial executor path, still through
/// the work-stealing scheduler).
fn bench_workers(c: &mut Criterion) {
    let ds = so::generate(BENCH_ROWS, BENCH_SEED);
    let mut group = c.benchmark_group("fig4_step2_workers");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                let session = session_of(&ds).unwrap();
                black_box(session.solve(&SolveRequest::default().workers(w)).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fractions, bench_workers);
criterion_main!(benches);
