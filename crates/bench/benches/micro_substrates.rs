//! Microbenchmarks for the substrates: mask algebra, pattern coverage,
//! Apriori mining, and d-separation — the building blocks whose cost the
//! end-to-end figures aggregate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faircap_bench::{BENCH_ROWS, BENCH_SEED};
use faircap_causal::d_separated_names;
use faircap_data::so;
use faircap_mining::{apriori, AprioriConfig};
use faircap_table::{Mask, Pattern, Value};
use std::hint::black_box;

fn bench_mask_ops(c: &mut Criterion) {
    let n = 38_000;
    let a = Mask::from_indices(n, &(0..n).step_by(3).collect::<Vec<_>>());
    let b = Mask::from_indices(n, &(0..n).step_by(7).collect::<Vec<_>>());
    c.bench_function("mask_and_38k", |bch| bch.iter(|| black_box(&a & &b)));
    c.bench_function("mask_intersect_count_38k", |bch| {
        bch.iter(|| black_box(a.intersect_count(&b)))
    });
    c.bench_function("mask_iter_ones_38k", |bch| {
        bch.iter(|| black_box(a.iter_ones().sum::<usize>()))
    });
}

fn bench_pattern_coverage(c: &mut Criterion) {
    let ds = so::generate(BENCH_ROWS, BENCH_SEED);
    let single = Pattern::of_eq(&[("gdp_group", Value::from("low"))]);
    let triple = Pattern::of_eq(&[
        ("gdp_group", Value::from("high")),
        ("age", Value::from("25-34")),
        ("gender", Value::from("male")),
    ]);
    c.bench_function("pattern_coverage_1pred", |b| {
        b.iter(|| black_box(single.coverage(&ds.df).unwrap()))
    });
    c.bench_function("pattern_coverage_3pred", |b| {
        b.iter(|| black_box(triple.coverage(&ds.df).unwrap()))
    });
}

fn bench_apriori(c: &mut Criterion) {
    let ds = so::generate(BENCH_ROWS, BENCH_SEED);
    let all = Mask::ones(ds.df.n_rows());
    let mut group = c.benchmark_group("apriori_immutables");
    for max_len in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(max_len), &max_len, |b, &l| {
            let cfg = AprioriConfig {
                min_support: 0.1,
                max_len: l,
                max_values_per_attr: 24,
            };
            b.iter(|| black_box(apriori(&ds.df, &ds.immutable, &all, &cfg).unwrap()));
        });
    }
    group.finish();
}

fn bench_dsep(c: &mut Criterion) {
    let ds = so::generate(1_000, BENCH_SEED);
    c.bench_function("d_separation_so_dag", |b| {
        b.iter(|| {
            black_box(
                d_separated_names(
                    &ds.dag,
                    &["education"],
                    &["salary"],
                    &["age", "gdp_group", "parents_education", "student"],
                )
                .unwrap(),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_mask_ops,
    bench_pattern_coverage,
    bench_apriori,
    bench_dsep
);
criterion_main!(benches);
