//! Criterion counterpart of Figure 5: runtime vs number of mutable (2–6)
//! and immutable (5–10) attributes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faircap_bench::{session_of, BENCH_ROWS, BENCH_SEED};
use faircap_core::{FairCapConfig, SolveRequest};
use faircap_data::so;
use std::hint::black_box;

fn bench_mutable(c: &mut Criterion) {
    let full = so::generate(BENCH_ROWS, BENCH_SEED);
    let cfg = FairCapConfig::default();
    let mut group = c.benchmark_group("fig5_mutable_attrs");
    group.sample_size(10);
    for n_mut in 2..=6usize {
        let ds = full.restrict_attrs(10, n_mut);
        group.bench_with_input(BenchmarkId::from_parameter(n_mut), &ds, |b, ds| {
            b.iter(|| {
                let session = session_of(ds).unwrap();
                black_box(session.solve(&SolveRequest::from(cfg.clone())).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_immutable(c: &mut Criterion) {
    let full = so::generate(BENCH_ROWS, BENCH_SEED);
    let cfg = FairCapConfig::default();
    let mut group = c.benchmark_group("fig5_immutable_attrs");
    group.sample_size(10);
    for n_imm in 5..=10usize {
        let ds = full.restrict_attrs(n_imm, 6);
        group.bench_with_input(BenchmarkId::from_parameter(n_imm), &ds, |b, ds| {
            b.iter(|| {
                let session = session_of(ds).unwrap();
                black_box(session.solve(&SolveRequest::from(cfg.clone())).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mutable, bench_immutable);
criterion_main!(benches);
