//! # faircap-bench
//!
//! Shared harness code for the experiment binaries (`table3` … `table6`,
//! `fig3` … `fig5`) and the criterion benches. Each binary regenerates one
//! table or figure of the paper's evaluation section; EXPERIMENTS.md records
//! paper-vs-measured values.
//!
//! The experiment loops follow the session model: one
//! [`PrescriptionSession`] per dataset (built by [`session_of`]), re-solved
//! per constraint variant — quality tables share the session's CATE caches
//! across variants, while runtime figures build a cold session per
//! measurement so timings keep the paper's cold-start semantics.

#![warn(missing_docs)]

use faircap_baselines::{adapt_if_clauses, IfClauseRole};
use faircap_core::{
    all_structural_variants, FairCap, FairCapConfig, FairnessKind, PrescriptionSession,
    SolutionReport,
};
use faircap_data::Dataset;
use faircap_table::Pattern;
use std::sync::Arc;

/// Build a [`PrescriptionSession`] from a dataset bundle (frame and DAG are
/// cloned into the session; the bundle stays usable).
pub fn session_of(ds: &Dataset) -> faircap_core::Result<PrescriptionSession> {
    FairCap::builder()
        .data(ds.df.clone())
        .dag(ds.dag.clone())
        .outcome(&ds.outcome)
        .immutable(ds.immutable.iter().cloned())
        .mutable(ds.mutable.iter().cloned())
        .protected(ds.protected.clone())
        .build()
}

/// Build a session that shares (rather than clones) an already-`Arc`ed
/// frame and DAG — what a serving deployment would do.
pub fn session_of_shared(
    df: Arc<faircap_table::DataFrame>,
    dag: Arc<faircap_causal::Dag>,
    ds: &Dataset,
) -> faircap_core::Result<PrescriptionSession> {
    FairCap::builder()
        .data(df)
        .dag(dag)
        .outcome(&ds.outcome)
        .immutable(ds.immutable.iter().cloned())
        .mutable(ds.mutable.iter().cloned())
        .protected(ds.protected.clone())
        .build()
}

/// The nine Table-4 FairCap rows: every structural variant of Figure 2
/// instantiated with the given thresholds.
pub fn nine_variants(
    kind: FairnessKind,
    fairness_threshold: f64,
    theta: f64,
    theta_protected: f64,
) -> Vec<(String, FairCapConfig)> {
    all_structural_variants(kind, fairness_threshold, theta, theta_protected)
        .into_iter()
        .map(|(label, fairness, coverage)| {
            let cfg = FairCapConfig {
                fairness,
                coverage,
                ..FairCapConfig::default()
            };
            (label, cfg)
        })
        .collect()
}

/// Mine baseline IF clauses with IDS over all attributes of a dataset.
pub fn ids_if_clauses(ds: &Dataset) -> Vec<Pattern> {
    let attrs = ds.attributes();
    // A low interpretability weight yields the fuller rule sets the paper
    // reports for IDS (12–16 rules) instead of a 2-rule summary.
    let cfg = faircap_baselines::IdsConfig {
        lambda_interp: 0.1,
        ..Default::default()
    };
    let set = faircap_baselines::learn_decision_set(&ds.df, &attrs, &ds.outcome, &cfg)
        .expect("IDS runs on generated data");
    set.rules.into_iter().map(|r| r.pattern).collect()
}

/// Mine baseline IF clauses with FRL over all attributes of a dataset.
pub fn frl_if_clauses(ds: &Dataset) -> Vec<Pattern> {
    let attrs = ds.attributes();
    let frl = faircap_baselines::learn_falling_rule_list(
        &ds.df,
        &attrs,
        &ds.outcome,
        &faircap_baselines::FrlConfig::default(),
    )
    .expect("FRL runs on generated data");
    frl.rules.into_iter().map(|r| r.pattern).collect()
}

/// The four baseline rows of Table 4 for one dataset: IDS / FRL × grouping /
/// intervention adaptations, evaluated against the shared session (so their
/// CATE queries hit the same caches as the FairCap variants).
pub fn baseline_rows(
    session: &PrescriptionSession,
    ds: &Dataset,
    config: &FairCapConfig,
) -> faircap_core::Result<Vec<SolutionReport>> {
    let ids = ids_if_clauses(ds);
    let frl = frl_if_clauses(ds);
    Ok(vec![
        adapt_if_clauses(
            session,
            &ids,
            IfClauseRole::Grouping,
            "IDS (IF clause as grouping pattern)",
            config,
        )?,
        adapt_if_clauses(
            session,
            &ids,
            IfClauseRole::Intervention,
            "IDS (IF clause as intervention pattern)",
            config,
        )?,
        adapt_if_clauses(
            session,
            &frl,
            IfClauseRole::Grouping,
            "FRL (IF clause as grouping pattern)",
            config,
        )?,
        adapt_if_clauses(
            session,
            &frl,
            IfClauseRole::Intervention,
            "FRL (IF clause as intervention pattern)",
            config,
        )?,
    ])
}

/// Row-count used by the criterion benches: large enough for stable CATEs,
/// small enough for tractable sampling (shape, not absolute numbers).
pub const BENCH_ROWS: usize = 6_000;

/// Seed shared by the benches for reproducibility.
pub const BENCH_SEED: u64 = 42;

#[cfg(test)]
mod tests {
    use super::*;
    use faircap_core::SolveRequest;

    #[test]
    fn nine_variants_enumerated() {
        let v = nine_variants(FairnessKind::StatisticalParity, 10_000.0, 0.5, 0.5);
        assert_eq!(v.len(), 9);
        assert!(v[0].0.contains("no fairness"));
        assert!(v.iter().any(|(l, _)| l.contains("individual fairness")));
    }

    #[test]
    fn baseline_clauses_minable() {
        let ds = faircap_data::so::generate(1_500, 7);
        let ids = ids_if_clauses(&ds);
        assert!(!ids.is_empty());
        let frl = frl_if_clauses(&ds);
        assert!(!frl.is_empty());
    }

    #[test]
    fn session_of_solves_and_reuses_caches_across_variants() {
        let ds = faircap_data::so::generate(1_500, 7);
        let session = session_of(&ds).unwrap();
        let variants = nine_variants(FairnessKind::StatisticalParity, 10_000.0, 0.5, 0.5);
        let mut misses_per_variant = Vec::new();
        for (_, cfg) in &variants {
            let before = session.cache_stats().misses;
            session.solve(&SolveRequest::from(cfg.clone())).unwrap();
            misses_per_variant.push(session.cache_stats().misses - before);
        }
        assert!(misses_per_variant[0] > 0, "first solve estimates");
        // Later fairness-only variants with the same coverage settings reuse
        // the warmed cache entirely.
        assert!(
            misses_per_variant.iter().skip(1).any(|&m| m == 0),
            "at least one re-solve must be fully cache-served: {misses_per_variant:?}"
        );
    }
}
