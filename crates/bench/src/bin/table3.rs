//! Table 3 — examined datasets: tuples, attributes, mutable attributes,
//! protected group.
//!
//! ```sh
//! cargo run --release -p faircap-bench --bin table3
//! ```

use faircap_data::{german, so};

fn main() {
    println!("Table 3: Examined datasets");
    println!(
        "{:<10} {:>8} {:>6} {:>9}  Protected Group",
        "Dataset", "Tuples", "Atts", "Mut Atts"
    );
    let so = so::generate(so::SO_DEFAULT_ROWS, 42);
    println!(
        "{:<10} {:>8} {:>6} {:>9}  {} ({:.1}% of the data)",
        "SO",
        so.df.n_rows(),
        so.attributes().len(),
        so.mutable.len(),
        so.protected,
        so.protected_fraction() * 100.0
    );
    let german = german::generate(german::GERMAN_DEFAULT_ROWS, 42);
    println!(
        "{:<10} {:>8} {:>6} {:>9}  {} ({:.1}% of the data)",
        "German",
        german.df.n_rows(),
        german.attributes().len(),
        german.mutable.len(),
        german.protected,
        german.protected_fraction() * 100.0
    );
    println!("\nPaper: SO 38K/20/10, low-GDP 21.5%; German 1000/20/15, single females 9.2%.");
}
