//! Estimator hot-path benchmark: per-estimator CATE latency across
//! scenario sizes, recorded machine-readably and gated against a committed
//! baseline.
//!
//! For each row tier (10⁴ and 10⁵ by default; `--full` adds 10⁶) the
//! driver generates the default `faircap-scenario` dataset (seed 7, planted
//! ground truth, 27 confounder cells) and times every built-in estimator on
//! the same estimand — `CATE(f0 = yes)` over the whole population with the
//! full stable-attribute adjustment set. Three reference baselines measure
//! the hot-path engine's win rather than just its absolute numbers:
//!
//! * `linear_naive` / `ipw_naive` — the pre-kernel row-major
//!   implementations preserved in `faircap_causal::estimate::reference`;
//! * `matching_brute` — the matching estimator forced onto its serial
//!   brute-force pair scan (quadratic, so only run at the 10⁴ tier).
//!
//! Results go to stdout *and* `BENCH_estimators.json` (CWD, or the
//! directory given as the first argument). Each row carries the best-of
//! rep's per-estimate [`HotStats`] (`build_ns` / `index_ns` / `solve_ns`
//! / `tasks` / `tree_visits`), so the scale-curve trend lines show where
//! the time goes, not just how much there is.
//! With `--gate BASELINE.json`,
//! each (estimator, rows) entry's best-of-reps time is compared against
//! the committed baseline's and the run exits 1 on a >20% regression
//! (plus a 1 ms absolute slack so sub-millisecond cases don't gate on
//! timer noise); entries missing from the baseline warn and skip, so new
//! estimators or tiers can land before their baseline does.
//!
//! ```sh
//! cargo run --release -p faircap-bench --bin estimator_bench \
//!     [-- OUT_DIR] [--gate BASELINE.json] [--full]
//! ```

use faircap_causal::estimate::{matching, reference};
use faircap_causal::{
    EstimateCtx, Estimator as _, EstimatorKind, HotStats, MatchParams, MatchStrategy,
};
use faircap_core::Json;
use faircap_scenario::{generate, ScenarioSpec, TruthGroup};
use faircap_table::{Pattern, Value};
use std::time::Instant;

/// Scenario seed, recorded in the result document.
const SEED: u64 = 7;
/// Default row tiers; `--full` appends [`FULL_TIER`].
const TIERS: [usize; 2] = [10_000, 100_000];
/// The paper-scale tier, opt-in because generation + matching take minutes.
const FULL_TIER: usize = 1_000_000;
/// Timed repetitions per case (best-of is what the gate compares).
const REPS: usize = 3;
/// Relative min-time increase vs. the baseline that fails the gate.
const GATE_MAX_REGRESSION: f64 = 0.20;
/// Absolute slack added to every gate ceiling: sub-millisecond cases
/// (10⁴-row OLS runs in ~0.6 ms) jitter by more than 20% from scheduler
/// noise alone, and this floor keeps the gate about regressions, not
/// timer variance. Irrelevant for the multi-ms cases the gate guards.
const GATE_ABS_SLACK_MS: f64 = 1.0;
/// Largest tier where the quadratic brute-force matching baseline runs.
const BRUTE_MAX_ROWS: usize = 10_000;

struct Entry {
    estimator: String,
    rows: usize,
    reps: usize,
    min_ms: f64,
    mean_ms: f64,
    cate: f64,
    /// Hot-path stage accounting of the best-of rep (the rep `min_ms`
    /// came from), with `solve_ns` closed as `total − build − index`
    /// exactly like the engine does. Reference baselines without staged
    /// accounting report everything under `solve_ns`.
    stats: HotStats,
}

impl Entry {
    fn to_json(&self) -> Json {
        Json::Obj(
            [
                ("estimator", Json::Str(self.estimator.clone())),
                ("rows", Json::Num(self.rows as f64)),
                ("reps", Json::Num(self.reps as f64)),
                ("min_ms", Json::Num(self.min_ms)),
                ("mean_ms", Json::Num(self.mean_ms)),
                ("cate", Json::Num(self.cate)),
                ("build_ns", Json::Num(self.stats.build_ns as f64)),
                ("index_ns", Json::Num(self.stats.index_ns as f64)),
                ("solve_ns", Json::Num(self.stats.solve_ns as f64)),
                ("tasks", Json::Num(self.stats.tasks as f64)),
                ("tree_visits", Json::Num(self.stats.tree_visits as f64)),
            ]
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
        )
    }
}

/// Time one estimator case: `reps` timed runs, best-of and mean recorded.
/// Each rep estimates into a fresh [`HotStats`]; the entry keeps the
/// best-of rep's accounting so the JSON row explains where `min_ms` went.
fn bench_case(label: &str, rows: usize, f: impl Fn(&mut HotStats) -> f64) -> Entry {
    let mut times_ms = Vec::with_capacity(REPS);
    let mut cate = 0.0;
    let mut best: Option<(f64, HotStats)> = None;
    for _ in 0..REPS {
        let mut stats = HotStats::default();
        let t0 = Instant::now();
        cate = f(&mut stats);
        let total_ns = t0.elapsed().as_nanos() as u64;
        let ms = total_ns as f64 / 1e6;
        stats.solve_ns = total_ns.saturating_sub(stats.build_ns.saturating_add(stats.index_ns));
        times_ms.push(ms);
        if best.as_ref().is_none_or(|(t, _)| ms < *t) {
            best = Some((ms, stats));
        }
    }
    let (min_ms, stats) = best.expect("at least one rep");
    let mean_ms = times_ms.iter().sum::<f64>() / times_ms.len() as f64;
    println!(
        "estimator_bench: rows={rows} {label:<15} min {min_ms:9.2} ms  mean {mean_ms:9.2} ms  cate {cate:+.3}"
    );
    Entry {
        estimator: label.to_owned(),
        rows,
        reps: REPS,
        min_ms,
        mean_ms,
        cate,
        stats,
    }
}

/// Best-of times of one tier's entries, keyed by estimator label.
fn min_of<'a>(entries: &'a [Entry], label: &str, rows: usize) -> Option<&'a Entry> {
    entries
        .iter()
        .find(|e| e.estimator == label && e.rows == rows)
}

fn run_tier(rows: usize, entries: &mut Vec<Entry>) {
    eprintln!("estimator_bench: generating scenario with {rows} rows (seed {SEED})...");
    let sc = generate(&ScenarioSpec {
        rows,
        seed: SEED,
        ..Default::default()
    })
    .expect("scenario generation");
    let df = &sc.dataset.df;
    let group = sc.group_mask(TruthGroup::All);
    let treated = Pattern::of_eq(&[("f0", Value::from("yes"))])
        .coverage(df)
        .expect("treatment pattern");
    let outcome = sc.dataset.outcome.as_str();
    let adjustment: Vec<String> = sc.dataset.immutable.clone();

    for kind in EstimatorKind::ALL {
        entries.push(bench_case(kind.name(), rows, |stats| {
            let mut ctx = EstimateCtx {
                workers: 1,
                stats: HotStats::default(),
                index_cache: None,
            };
            let estimate = kind
                .estimate_with_ctx(&mut ctx, df, &group, &treated, outcome, &adjustment)
                .expect("estimate");
            stats.absorb(&ctx.stats);
            estimate.cate
        }));
    }
    entries.push(bench_case("linear_naive", rows, |_stats| {
        reference::linear_naive(df, &group, &treated, outcome, &adjustment)
            .expect("linear_naive")
            .cate
    }));
    entries.push(bench_case("ipw_naive", rows, |_stats| {
        reference::ipw_naive(df, &group, &treated, outcome, &adjustment)
            .expect("ipw_naive")
            .cate
    }));
    if rows <= BRUTE_MAX_ROWS {
        entries.push(bench_case("matching_brute", rows, |stats| {
            let params = MatchParams {
                index: None,
                strategy: MatchStrategy::Brute,
                workers: 1,
            };
            matching::estimate_with(df, &group, &treated, outcome, &adjustment, &params, stats)
                .expect("matching_brute")
                .cate
        }));
    }

    // The headline wins, printed per tier when both sides ran.
    for (fast, slow) in [
        ("matching", "matching_brute"),
        ("linear", "linear_naive"),
        ("ipw", "ipw_naive"),
    ] {
        if let (Some(f), Some(s)) = (min_of(entries, fast, rows), min_of(entries, slow, rows)) {
            println!(
                "estimator_bench: rows={rows} {fast} speedup vs {slow}: {:.1}x",
                s.min_ms / f.min_ms
            );
        }
    }
}

/// The committed baseline's `(estimator, rows) → min_ms` map, if the file
/// parses as an estimator-benchmark document.
fn baseline_times(path: &str) -> Option<Vec<(String, usize, f64)>> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc = Json::parse(&text).ok()?;
    let Json::Arr(items) = doc.get("entries")? else {
        return None;
    };
    let mut out = Vec::new();
    for item in items {
        if let (Some(Json::Str(e)), Some(Json::Num(rows)), Some(Json::Num(min))) =
            (item.get("estimator"), item.get("rows"), item.get("min_ms"))
        {
            out.push((e.clone(), *rows as usize, *min));
        }
    }
    Some(out)
}

fn main() {
    let mut out_dir = ".".to_owned();
    let mut gate: Option<String> = None;
    let mut full = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--gate" => gate = Some(args.next().expect("--gate needs a baseline path")),
            "--full" => full = true,
            _ => out_dir = arg,
        }
    }

    let mut tiers: Vec<usize> = TIERS.to_vec();
    if full {
        tiers.push(FULL_TIER);
    }

    let mut entries = Vec::new();
    for rows in tiers {
        run_tier(rows, &mut entries);
    }

    let doc = Json::Obj(vec![
        ("benchmark".into(), Json::Str("estimators".into())),
        ("seed".into(), Json::Num(SEED as f64)),
        (
            "entries".into(),
            Json::Arr(entries.iter().map(Entry::to_json).collect()),
        ),
    ]);
    let out_dir = out_dir.trim_end_matches('/');
    std::fs::create_dir_all(out_dir).expect("creating the output directory");
    let path = format!("{out_dir}/BENCH_estimators.json");
    std::fs::write(&path, doc.render()).expect("writing BENCH_estimators.json");
    println!("estimator_bench: wrote {path}");

    if let Some(gate_path) = gate {
        match baseline_times(&gate_path) {
            Some(baseline) if !baseline.is_empty() => {
                let mut regressed = false;
                for entry in &entries {
                    let Some((_, _, base_min)) = baseline
                        .iter()
                        .find(|(e, r, _)| *e == entry.estimator && *r == entry.rows)
                    else {
                        eprintln!(
                            "estimator_bench: warning — no baseline for {} @ {} rows; skipped",
                            entry.estimator, entry.rows
                        );
                        continue;
                    };
                    let ceiling = base_min * (1.0 + GATE_MAX_REGRESSION) + GATE_ABS_SLACK_MS;
                    let verdict = if entry.min_ms > ceiling {
                        regressed = true;
                        "REGRESSED"
                    } else {
                        "ok"
                    };
                    println!(
                        "estimator_bench: gate {} @ {} rows — {:.2} ms vs baseline {:.2} ms (ceiling {:.2}): {}",
                        entry.estimator, entry.rows, entry.min_ms, base_min, ceiling, verdict
                    );
                }
                if regressed {
                    eprintln!(
                        "estimator_bench: FAIL — at least one estimator regressed more than {:.0}% \
                         vs {gate_path}",
                        GATE_MAX_REGRESSION * 100.0
                    );
                    std::process::exit(1);
                }
            }
            _ => {
                // A missing or foreign-format baseline cannot gate; flag it
                // loudly but let the run succeed so the baseline can be
                // established.
                eprintln!(
                    "estimator_bench: warning — no baseline entries in {gate_path}; gate skipped"
                );
            }
        }
    }
}
