//! Figure 5 — runtime as a function of the number of mutable (2–6, with 10
//! immutable) and immutable (5–10, with 6 mutable) attributes, for the
//! no-constraint / group-fairness / individual-fairness settings plus the
//! IDS and FRL baselines.
//!
//! ```sh
//! cargo run --release -p faircap-bench --bin fig5
//! ```

use faircap_bench::session_of;
use faircap_core::{FairCapConfig, FairnessConstraint, FairnessScope, SolveRequest};
use faircap_data::{so, Dataset};
use std::time::Instant;

fn settings() -> Vec<(&'static str, FairCapConfig)> {
    let group = FairCapConfig {
        fairness: FairnessConstraint::StatisticalParity {
            scope: FairnessScope::Group,
            epsilon: 10_000.0,
        },
        ..FairCapConfig::default()
    };
    let indiv = FairCapConfig {
        fairness: FairnessConstraint::StatisticalParity {
            scope: FairnessScope::Individual,
            epsilon: 10_000.0,
        },
        ..FairCapConfig::default()
    };
    vec![
        ("No constraint", FairCapConfig::default()),
        ("Group fairness", group),
        ("Indi fairness", indiv),
    ]
}

fn sweep(title: &str, datasets: &[(String, Dataset)]) {
    println!("{title}");
    print!("setting");
    for (tag, _) in datasets {
        print!(",{tag}");
    }
    println!();
    for (label, cfg) in settings() {
        print!("{label}");
        for (_, ds) in datasets {
            let session = session_of(ds).expect("restricted dataset is well-formed");
            let report = session
                .solve(&SolveRequest::from(cfg.clone()))
                .expect("variant config is valid");
            print!(",{:.3}", report.timings.total().as_secs_f64());
        }
        println!();
    }
    for baseline in ["IDS", "FRL"] {
        print!("{baseline}");
        for (_, ds) in datasets {
            let t = Instant::now();
            if baseline == "IDS" {
                let _ = faircap_bench::ids_if_clauses(ds);
            } else {
                let _ = faircap_bench::frl_if_clauses(ds);
            }
            print!(",{:.3}", t.elapsed().as_secs_f64());
        }
        println!();
    }
}

fn main() {
    let full = so::generate(so::SO_DEFAULT_ROWS, 42);
    println!("Figure 5: runtime (seconds) vs number of attributes, Stack Overflow\n");

    let mutable_sweep: Vec<(String, Dataset)> = (2..=6)
        .map(|m| (format!("10imm/{m}mut"), full.restrict_attrs(10, m)))
        .collect();
    sweep("Left panel: 10 immutable, 2-6 mutable", &mutable_sweep);

    println!();
    let immutable_sweep: Vec<(String, Dataset)> = (5..=10)
        .map(|i| (format!("{i}imm/6mut"), full.restrict_attrs(i, 6)))
        .collect();
    sweep("Right panel: 5-10 immutable, 6 mutable", &immutable_sweep);

    println!("\nShape target (paper Fig. 5): runtime grows with both attribute kinds");
    println!("(mutable → intervention lattice, immutable → grouping patterns), with");
    println!("similar impact; IDS/FRL runtimes grow only mildly.");
}
