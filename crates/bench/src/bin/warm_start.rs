//! Cold vs. warm solve: the session snapshot / warm-start story, measured.
//!
//! Builds a session, solves a constraint sweep cold (every CATE estimated
//! from scratch), snapshots the warmed caches, then restores the snapshot
//! into a fresh session and re-runs the sweep warm. Reports wall-clock per
//! phase, the snapshot's size, and the warm solve's cache counters — which
//! must show **zero** misses, the property the serving restart path relies
//! on (also asserted by `tests/integration_snapshot.rs` and the CI
//! round-trip job).
//!
//! ```sh
//! cargo run --release -p faircap-bench --bin warm_start
//! ```

use faircap_bench::session_of;
use faircap_core::{
    FairnessConstraint, FairnessScope, SessionSnapshot, SolutionReport, SolveRequest,
};
use faircap_data::{german, so, Dataset};
use std::time::Instant;

fn sweep() -> Vec<SolveRequest> {
    [
        FairnessConstraint::None,
        FairnessConstraint::StatisticalParity {
            scope: FairnessScope::Group,
            epsilon: 10_000.0,
        },
        FairnessConstraint::BoundedGroupLoss {
            scope: FairnessScope::Group,
            tau: 0.1,
        },
    ]
    .into_iter()
    .map(|f| SolveRequest::default().fairness(f))
    .collect()
}

fn run(name: &str, ds: &Dataset) {
    println!("== {name} ({} rows) ==", ds.df.n_rows());

    let cold = session_of(ds).expect("dataset is well-formed");
    let t0 = Instant::now();
    let mut reports: Vec<SolutionReport> = Vec::new();
    for request in sweep() {
        reports.push(cold.solve(&request).expect("valid request"));
    }
    let cold_time = t0.elapsed();
    let cold_stats = cold.cache_stats();

    let t1 = Instant::now();
    let snapshot = cold.snapshot();
    let encoded = snapshot.encode();
    let snapshot_time = t1.elapsed();

    let t2 = Instant::now();
    let decoded = SessionSnapshot::decode(&encoded).expect("own snapshot decodes");
    let warm = session_of_warm(ds, decoded);
    let restore_time = t2.elapsed();

    let t3 = Instant::now();
    let mut warm_reports: Vec<SolutionReport> = Vec::new();
    for request in sweep() {
        warm_reports.push(warm.solve(&request).expect("valid request"));
    }
    let warm_time = t3.elapsed();
    let warm_stats = warm.cache_stats();

    for (a, b) in reports.iter().zip(&warm_reports) {
        assert_eq!(
            format!("{:?}", a.summary),
            format!("{:?}", b.summary),
            "warm sweep must reproduce the cold sweep"
        );
    }
    assert_eq!(warm_stats.misses, 0, "warm sweep must not re-estimate");

    println!(
        "  cold sweep : {cold_time:>10.2?}  ({} estimations)",
        cold_stats.misses
    );
    println!(
        "  snapshot   : {snapshot_time:>10.2?}  ({} estimates, {:.1} KiB)",
        snapshot.state.estimates.len(),
        encoded.len() as f64 / 1024.0
    );
    println!("  restore    : {restore_time:>10.2?}");
    println!(
        "  warm sweep : {warm_time:>10.2?}  ({} hits / {} misses)",
        warm_stats.hits, warm_stats.misses
    );
    let speedup = cold_time.as_secs_f64() / warm_time.as_secs_f64().max(1e-9);
    println!("  speedup    : {speedup:>9.1}x\n");
}

fn session_of_warm(ds: &Dataset, snapshot: SessionSnapshot) -> faircap_core::PrescriptionSession {
    faircap_core::FairCap::builder()
        .data(ds.df.clone())
        .dag(ds.dag.clone())
        .outcome(&ds.outcome)
        .immutable(ds.immutable.iter().cloned())
        .mutable(ds.mutable.iter().cloned())
        .protected(ds.protected.clone())
        .warm_start(snapshot)
        .build()
        .expect("snapshot matches the dataset")
}

fn main() {
    println!("Cold vs. warm solve (3-constraint sweep per dataset)\n");
    run("stackoverflow", &so::generate(10_000, 42));
    run("german", &german::generate(german::GERMAN_DEFAULT_ROWS, 42));
}
