//! Estimator ablation — linear / stratified / IPW / AIPW / matching on the
//! German-credit dataset, sharing one session so the per-estimator cache
//! stats are directly comparable.
//!
//! ```sh
//! cargo run --release -p faircap-bench --bin ablation_estimators
//! ```
//!
//! Each estimator re-solves the same Prescription Ruleset Selection
//! instance; because the [`CateEngine`](faircap_causal::CateEngine) caches
//! estimates per estimator name, the sweep reports exactly how much
//! estimation work each estimator performed (`misses`) and how much was
//! reused within its own solve (`hits`). `docs/estimators.md` discusses the
//! trade-offs the numbers illustrate.

use faircap_bench::session_of;
use faircap_causal::{Estimator, EstimatorKind};
use faircap_core::SolveRequest;
use faircap_data::german;
use std::time::Instant;

fn main() {
    let ds = german::generate(german::GERMAN_DEFAULT_ROWS, 42);
    let session = session_of(&ds).expect("German generator produces a valid instance");
    println!(
        "Estimator ablation on German credit ({} rows, protected = {})\n",
        ds.df.n_rows(),
        ds.protected
    );
    println!(
        "{:<12} {:>6} {:>10} {:>12} {:>10} {:>10} {:>8} {:>8} {:>9}",
        "estimator",
        "rules",
        "expected",
        "exp_protect",
        "unfairness",
        "coverage",
        "hits",
        "misses",
        "solve_ms"
    );
    for kind in EstimatorKind::ALL {
        let t0 = Instant::now();
        let report = session
            .solve(&SolveRequest::default().estimator_kind(kind))
            .expect("solve succeeds on generated data");
        let elapsed = t0.elapsed();
        let stats = session.engine().cache_stats_for(kind.name());
        println!(
            "{:<12} {:>6} {:>10.4} {:>12.4} {:>10.4} {:>10.3} {:>8} {:>8} {:>9.1}",
            kind.name(),
            report.size(),
            report.summary.expected,
            report.summary.expected_protected,
            report.summary.unfairness,
            report.summary.coverage,
            stats.hits,
            stats.misses,
            elapsed.as_secs_f64() * 1e3,
        );
    }
    println!("\nPer-estimator cache stats (accumulated over the sweep):");
    for (name, stats) in session.cache_stats_by_estimator() {
        println!(
            "  {:<12} hits {:>6}  misses {:>6}  entries {:>6}",
            name, stats.hits, stats.misses, stats.entries
        );
    }
    let agg = session.cache_stats();
    println!(
        "  {:<12} hits {:>6}  misses {:>6}  entries {:>6}",
        "(total)", agg.hits, agg.misses, agg.entries
    );
}
