//! Figure 4 — total runtime as a function of the dataset fraction (25%,
//! 50%, 75%, 100% of Stack Overflow) for the nine FairCap settings plus the
//! IDS and FRL baselines.
//!
//! ```sh
//! cargo run --release -p faircap-bench --bin fig4
//! ```

use faircap_bench::{nine_variants, session_of};
use faircap_core::{FairnessKind, SolveRequest};
use faircap_data::so;
use std::time::Instant;

fn main() {
    let full = so::generate(so::SO_DEFAULT_ROWS, 42);
    println!("Figure 4: total runtime (seconds) vs dataset fraction, Stack Overflow");
    print!("setting");
    let fractions = [0.25, 0.5, 0.75, 1.0];
    for f in fractions {
        print!(",{:.0}%", f * 100.0);
    }
    println!();

    let variants = nine_variants(FairnessKind::StatisticalParity, 10_000.0, 0.5, 0.5);
    let samples: Vec<_> = fractions
        .iter()
        .map(|&f| {
            if f >= 1.0 {
                full.clone()
            } else {
                full.subsample(f, 7)
            }
        })
        .collect();
    for (label, cfg) in &variants {
        print!("{label}");
        for ds in &samples {
            let session = session_of(ds).expect("subsample is well-formed");
            let report = session
                .solve(&SolveRequest::from(cfg.clone()))
                .expect("variant config is valid");
            print!(",{:.3}", report.timings.total().as_secs_f64());
        }
        println!();
    }
    // Baseline curves: IDS and FRL rule learning on the same samples.
    print!("IDS");
    for ds in &samples {
        let t = Instant::now();
        let _ = faircap_bench::ids_if_clauses(ds);
        print!(",{:.3}", t.elapsed().as_secs_f64());
    }
    println!();
    print!("FRL");
    for ds in &samples {
        let t = Instant::now();
        let _ = faircap_bench::frl_if_clauses(ds);
        print!(",{:.3}", t.elapsed().as_secs_f64());
    }
    println!();
    println!("\nShape target (paper Fig. 4): runtime grows roughly linearly in rows.");
}
