//! Table 4 — comparison of solutions in terms of size, coverage, expected
//! utility and unfairness: the nine FairCap constraint variants plus the
//! IDS/FRL IF-clause adaptations, on Stack Overflow (SP fairness) and
//! German Credit (BGL fairness).
//!
//! ```sh
//! cargo run --release -p faircap-bench --bin table4
//! ```

use faircap_bench::{baseline_rows, nine_variants, session_of};
use faircap_core::{FairCapConfig, FairnessKind, SolutionReport, SolveRequest};
use faircap_data::{german, so};

fn main() {
    // ---------------- Stack Overflow, SP fairness ----------------
    // Paper defaults (§6): coverage thresholds 0.5, SP threshold $10k.
    let so = so::generate(so::SO_DEFAULT_ROWS, 42);
    println!("Table 4 (top): Stack Overflow — statistical-parity fairness, ε=$10k, θ=θp=0.5");
    println!("{}", SolutionReport::table_header());
    let session = session_of(&so).expect("SO dataset is well-formed");
    for (label, cfg) in nine_variants(FairnessKind::StatisticalParity, 10_000.0, 0.5, 0.5) {
        let mut report = session
            .solve(&SolveRequest::from(cfg))
            .expect("variant config is valid");
        report.label = label;
        println!("{}", report.table_row());
    }
    for report in baseline_rows(&session, &so, &FairCapConfig::default()).expect("baselines run") {
        println!("{}", report.table_row());
    }
    let stats = session.cache_stats();
    println!(
        "(cate cache: {} hits / {} misses across all 13 rows)",
        stats.hits, stats.misses
    );

    // ---------------- German Credit, BGL fairness ----------------
    // Paper defaults (§6): coverage thresholds 0.3, fairness threshold 0.1.
    let german = german::generate(german::GERMAN_DEFAULT_ROWS, 42);
    println!("\nTable 4 (bottom): German Credit — bounded-group-loss fairness, τ=0.1, θ=θp=0.3");
    println!("{}", SolutionReport::table_header());
    let session = session_of(&german).expect("German dataset is well-formed");
    for (label, cfg) in nine_variants(FairnessKind::BoundedGroupLoss, 0.1, 0.3, 0.3) {
        let mut report = session
            .solve(&SolveRequest::from(cfg))
            .expect("variant config is valid");
        report.label = label;
        println!("{}", report.table_row());
    }
    for report in
        baseline_rows(&session, &german, &FairCapConfig::default()).expect("baselines run")
    {
        println!("{}", report.table_row());
    }

    println!("\nShape targets (paper Table 4):");
    println!("  * unconstrained rows maximize utility AND unfairness;");
    println!("  * group fairness keeps unfairness ≤ threshold at a utility cost;");
    println!("  * rule-coverage variants select fewer rules with lower utility;");
    println!("  * FairCap beats the IF-clause adaptations on expected utility.");
}
