//! Figure 3 — runtime of each FairCap step (group mining, treatment mining,
//! greedy selection) across the nine problem settings, on Stack Overflow.
//!
//! Prints a CSV series (one row per setting) matching the figure's stacked
//! bars.
//!
//! ```sh
//! cargo run --release -p faircap-bench --bin fig3
//! ```

use faircap_bench::{nine_variants, session_of};
use faircap_core::{FairnessKind, SolveRequest};
use faircap_data::so;

fn main() {
    let ds = so::generate(so::SO_DEFAULT_ROWS, 42);
    println!("Figure 3: runtime by step (seconds), Stack Overflow, SP ε=$10k");
    println!("setting,group_mining_s,treatment_mining_s,greedy_selection_s,total_s");
    for (label, cfg) in nine_variants(FairnessKind::StatisticalParity, 10_000.0, 0.5, 0.5) {
        // Cold session per setting: the figure reports cold-start runtimes,
        // as in the paper (warm re-solves are near-free; see table5).
        let session = session_of(&ds).expect("SO dataset is well-formed");
        let report = session
            .solve(&SolveRequest::from(cfg))
            .expect("variant config is valid");
        let t = &report.timings;
        println!(
            "{label},{:.3},{:.3},{:.3},{:.3}",
            t.grouping.as_secs_f64(),
            t.intervention.as_secs_f64(),
            t.greedy.as_secs_f64(),
            t.total().as_secs_f64()
        );
    }
    println!("\nShape targets (paper Fig. 3): treatment mining (step 2) dominates;");
    println!("group mining is negligible; rule-coverage settings run fastest because");
    println!("the raised Apriori threshold prunes grouping patterns.");
}
