//! Figure 3 — runtime of each FairCap step (group mining, treatment mining,
//! greedy selection) across the nine problem settings, on Stack Overflow.
//!
//! Prints a CSV series (one row per setting) matching the figure's stacked
//! bars.
//!
//! ```sh
//! cargo run --release -p faircap-bench --bin fig3
//! ```

use faircap_bench::{input_of, nine_variants};
use faircap_core::{run, FairnessKind};
use faircap_data::so;

fn main() {
    let ds = so::generate(so::SO_DEFAULT_ROWS, 42);
    let input = input_of(&ds);
    println!("Figure 3: runtime by step (seconds), Stack Overflow, SP ε=$10k");
    println!("setting,group_mining_s,treatment_mining_s,greedy_selection_s,total_s");
    for (label, cfg) in nine_variants(FairnessKind::StatisticalParity, 10_000.0, 0.5, 0.5) {
        let report = run(&input, &cfg);
        let t = &report.timings;
        println!(
            "{label},{:.3},{:.3},{:.3},{:.3}",
            t.grouping.as_secs_f64(),
            t.intervention.as_secs_f64(),
            t.greedy.as_secs_f64(),
            t.total().as_secs_f64()
        );
    }
    println!("\nShape targets (paper Fig. 3): treatment mining (step 2) dominates;");
    println!("group mining is negligible; rule-coverage settings run fastest because");
    println!("the raised Apriori threshold prunes grouping patterns.");
}
