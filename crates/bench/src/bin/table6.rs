//! Table 6 — robustness to the causal DAG: the original generator DAG, a
//! 1-layer independent DAG, the 2-layer variants, and a DAG recovered by
//! the PC algorithm; SO with group SP + group coverage, German with group
//! BGL + group coverage.
//!
//! ```sh
//! cargo run --release -p faircap-bench --bin table6
//! ```

use faircap_core::{
    CoverageConstraint, FairCap, FairCapConfig, FairnessConstraint, FairnessScope, SolutionReport,
    SolveRequest,
};
use faircap_data::{build_dag_variant, german, so, DagVariant, Dataset};
use std::sync::Arc;

fn run_block(ds: &Dataset, cfg: &FairCapConfig, title: &str) {
    println!("{title}");
    println!("{}", SolutionReport::table_header());
    // The frame is shared across variants; each DAG variant invalidates the
    // adjustment-set caches, so it gets its own session.
    let df = Arc::new(ds.df.clone());
    for variant in DagVariant::all() {
        let dag = build_dag_variant(ds, variant);
        let session = FairCap::builder()
            .data(Arc::clone(&df))
            .dag(dag)
            .outcome(&ds.outcome)
            .immutable(ds.immutable.iter().cloned())
            .mutable(ds.mutable.iter().cloned())
            .protected(ds.protected.clone())
            .build()
            .expect("dataset is well-formed");
        let mut report = session
            .solve(&SolveRequest::from(cfg.clone()))
            .expect("config is valid");
        report.label = variant.label().to_owned();
        println!("{}", report.table_row());
    }
}

fn main() {
    // SO rows: SP group fairness + group coverage (paper's Table 6 top).
    let so = so::generate(so::SO_DEFAULT_ROWS, 42);
    let so_cfg = FairCapConfig {
        fairness: FairnessConstraint::StatisticalParity {
            scope: FairnessScope::Group,
            epsilon: 10_000.0,
        },
        coverage: CoverageConstraint::Group {
            theta: 0.5,
            theta_protected: 0.5,
        },
        ..FairCapConfig::default()
    };
    run_block(
        &so,
        &so_cfg,
        "Table 6 (top): Stack Overflow — SP group fairness + group coverage",
    );

    // German rows: BGL group fairness + group coverage (Table 6 bottom).
    let german = german::generate(german::GERMAN_DEFAULT_ROWS, 42);
    let german_cfg = FairCapConfig {
        fairness: FairnessConstraint::BoundedGroupLoss {
            scope: FairnessScope::Group,
            tau: 0.1,
        },
        coverage: CoverageConstraint::Group {
            theta: 0.3,
            theta_protected: 0.3,
        },
        ..FairCapConfig::default()
    };
    run_block(
        &german,
        &german_cfg,
        "\nTable 6 (bottom): German Credit — BGL group fairness + group coverage",
    );

    println!("\nShape targets (paper Table 6): SO metrics are stable across DAG");
    println!("variants; German varies more, with the original and PC DAGs strongest.");
}
