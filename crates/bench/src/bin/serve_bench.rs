//! Serving latency/throughput benchmark: the perf trajectory of the
//! `faircap-serve` front end, recorded machine-readably.
//!
//! Boots an in-process server over the German-credit session, warms the
//! caches with one solve, then drives three closed-loop phases:
//!
//! 1. **per_conn** — one fresh connection per request (the v1
//!    thread-per-connection client model), the historical baseline;
//! 2. **keepalive** — the same workload over persistent keep-alive
//!    connections, one per client thread (the acceptance number: ≥5× the
//!    v1 ~18 req/s);
//! 3. **coalesce** — a duplicate-heavy mix (16 clients sharing 4 distinct
//!    request bodies) where in-flight coalescing folds identical solves;
//!    the phase entry records the observed coalesce hits.
//!
//! Results go to stdout *and* to `BENCH_serve.json` (CWD, or the
//! directory given as the first argument) so CI can archive the trend.
//! With `--gate BASELINE.json`, the run compares its keep-alive
//! throughput against the committed baseline's and exits 1 on a >20%
//! regression.
//!
//! ```sh
//! cargo run --release -p faircap-bench --bin serve_bench [-- OUT_DIR] [--gate BASELINE.json]
//! ```

use faircap_bench::session_of;
use faircap_core::{Json, SessionRegistry};
use faircap_serve::{ServeClient, ServeConfig, Server};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Client threads in the per_conn and keepalive phases.
const CONCURRENCY: usize = 8;
/// Requests per client thread in the per_conn and keepalive phases.
const REQUESTS_PER_CLIENT: usize = 25;
/// Client threads in the duplicate-heavy coalescing phase.
const COALESCE_CLIENTS: usize = 16;
/// Requests per client thread in the coalescing phase.
const COALESCE_REQUESTS: usize = 25;
/// Distinct request bodies shared across the coalescing phase's clients.
const COALESCE_DISTINCT: usize = 4;
/// Data seed for the benchmark dataset, recorded in every result entry.
const SEED: u64 = 42;
/// Relative keep-alive throughput drop vs. the baseline that fails the gate.
const GATE_MAX_REGRESSION: f64 = 0.20;

struct PhaseResult {
    phase: &'static str,
    clients: usize,
    completed: usize,
    wall: Duration,
    throughput: f64,
    mean: f64,
    p50: f64,
    p90: f64,
    p99: f64,
    max: f64,
    coalesce_hits: Option<u64>,
}

impl PhaseResult {
    fn to_json(&self) -> Json {
        let num = Json::Num;
        let mut fields: Vec<(String, Json)> = [
            ("phase", Json::Str(self.phase.into())),
            ("concurrency", num(self.clients as f64)),
            ("requests", num(self.completed as f64)),
            ("wall_s", num(self.wall.as_secs_f64())),
            ("throughput_rps", num(self.throughput)),
            ("mean_ms", num(self.mean)),
            ("p50_ms", num(self.p50)),
            ("p90_ms", num(self.p90)),
            ("p99_ms", num(self.p99)),
            ("max_ms", num(self.max)),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_owned(), v))
        .collect();
        if let Some(hits) = self.coalesce_hits {
            fields.push(("coalesce_hits".to_owned(), num(hits as f64)));
        }
        Json::Obj(fields)
    }
}

/// Drive one closed-loop phase: `clients` threads × `requests` solves
/// each, body chosen per (client, request). `keepalive` reuses one
/// connection per client; otherwise every request opens a fresh one.
fn run_phase(
    phase: &'static str,
    client: &ServeClient,
    clients: usize,
    requests: usize,
    keepalive: bool,
    body_of: impl Fn(usize, usize) -> String + Sync,
) -> PhaseResult {
    let started = Instant::now();
    let latencies_ms: Vec<f64> = std::thread::scope(|scope| {
        let body_of = &body_of;
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let client = client.clone();
                scope.spawn(move || {
                    let mut conn = if keepalive {
                        Some(client.connect().expect("keep-alive connect"))
                    } else {
                        None
                    };
                    let mut local = Vec::with_capacity(requests);
                    let mut rejected = 0u64;
                    for r in 0..requests {
                        let body = body_of(c, r);
                        let t0 = Instant::now();
                        let response = match &mut conn {
                            Some(conn) => conn
                                .request("POST", "/v1/solve", Some(&body))
                                .expect("bench request"),
                            None => client.post_json("/v1/solve", &body).expect("bench request"),
                        };
                        match response.status {
                            200 => local.push(t0.elapsed().as_secs_f64() * 1e3),
                            429 => rejected += 1,
                            other => panic!("unexpected status {other}: {}", response.body),
                        }
                    }
                    (local, rejected)
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| {
                let (local, rejected) = h.join().expect("bench client thread");
                assert_eq!(rejected, 0, "sized queue must admit the bench load");
                local
            })
            .collect()
    });
    let wall = started.elapsed();
    let completed = latencies_ms.len();
    // Percentiles share the serve layer's log-bucketed histogram
    // semantics (`faircap_obs::summarize_ms`), so BENCH_serve rows agree
    // with `/v1/metrics` and `/metrics` on the same run.
    let summary = faircap_obs::summarize_ms(&latencies_ms).expect("non-empty phase");
    let result = PhaseResult {
        phase,
        clients,
        completed,
        wall,
        throughput: completed as f64 / wall.as_secs_f64(),
        mean: summary.mean_ms,
        p50: summary.p50_ms,
        p90: summary.p90_ms,
        p99: summary.p99_ms,
        max: summary.max_ms,
        coalesce_hits: None,
    };
    println!(
        "serve_bench[{phase}]: {completed} solves in {:.2?} → {:.1} req/s \
         (p50 {:.2} ms, p90 {:.2} ms, p99 {:.2} ms, max {:.2} ms)",
        result.wall, result.throughput, result.p50, result.p90, result.p99, result.max
    );
    result
}

/// Read `requests.coalesce_hits` off `/v1/metrics`.
fn coalesce_hits(client: &ServeClient) -> u64 {
    let metrics = client.get("/v1/metrics").expect("metrics request");
    let doc = Json::parse(&metrics.body).expect("metrics JSON");
    match doc.get("requests").and_then(|r| r.get("coalesce_hits")) {
        Some(Json::Num(n)) => *n as u64,
        _ => 0,
    }
}

/// The committed baseline's keep-alive throughput, if the file parses.
fn baseline_keepalive_rps(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc = Json::parse(&text).ok()?;
    let Json::Arr(phases) = doc.get("phases")? else {
        return None;
    };
    phases
        .iter()
        .find_map(|p| match (p.get("phase"), p.get("throughput_rps")) {
            (Some(Json::Str(name)), Some(Json::Num(rps))) if name == "keepalive" => Some(*rps),
            _ => None,
        })
}

fn main() {
    let mut out_dir = ".".to_owned();
    let mut gate: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--gate" {
            gate = Some(args.next().expect("--gate needs a baseline path"));
        } else {
            out_dir = arg;
        }
    }

    let ds = faircap_data::german::generate(faircap_data::german::GERMAN_DEFAULT_ROWS, SEED);
    let rows = ds.df.n_rows();
    let session = session_of(&ds).expect("german dataset is well-formed");
    let registry = Arc::new(SessionRegistry::new());
    registry.register("german", session);

    let server = Server::start(
        ServeConfig {
            max_concurrent_solves: CONCURRENCY,
            solve_queue_depth: COALESCE_CLIENTS * 4,
            ..ServeConfig::default()
        },
        registry,
    )
    .expect("binding an ephemeral port");
    let client = server.client();
    client
        .wait_ready(Duration::from_secs(30))
        .expect("server boots");

    // Warm-up: the first solve pays full estimation; the measured phases
    // are the serving steady state (cache-hit solves), which is what a
    // production front end actually serves per request.
    let warm = client
        .post_json("/v1/solve", r#"{"max_rules": 5}"#)
        .expect("warm-up request");
    assert_eq!(warm.status, 200, "warm-up failed: {}", warm.body);
    println!("serve_bench: german ({rows} rows) warmed");

    let warm_body = |_c: usize, _r: usize| r#"{"max_rules": 5}"#.to_owned();
    let per_conn = run_phase(
        "per_conn",
        &client,
        CONCURRENCY,
        REQUESTS_PER_CLIENT,
        false,
        warm_body,
    );
    let keepalive = run_phase(
        "keepalive",
        &client,
        CONCURRENCY,
        REQUESTS_PER_CLIENT,
        true,
        warm_body,
    );

    // Duplicate-heavy mix: 16 clients share 4 distinct bodies, so at any
    // instant ~4 clients race on each body and coalescing folds them.
    let hits_before = coalesce_hits(&client);
    let mut coalesce = run_phase(
        "coalesce",
        &client,
        COALESCE_CLIENTS,
        COALESCE_REQUESTS,
        true,
        |c: usize, _r: usize| format!(r#"{{"max_rules": {}}}"#, 3 + (c % COALESCE_DISTINCT)),
    );
    coalesce.coalesce_hits = Some(coalesce_hits(&client).saturating_sub(hits_before));
    println!(
        "serve_bench[coalesce]: {} requests folded into running solves",
        coalesce.coalesce_hits.unwrap_or(0)
    );

    let num = Json::Num;
    let doc = Json::Obj(
        [
            ("benchmark", Json::Str("serve".into())),
            ("dataset", Json::Str("german".into())),
            ("rows", num(rows as f64)),
            ("seed", num(SEED as f64)),
            ("warm", Json::Bool(true)),
            // Schema note: percentiles are log-bucketed-histogram
            // quantiles shared with the serve layer, not exact
            // sorted-sample ranks as in pre-observability rows.
            (
                "quantile_method",
                Json::Str(faircap_obs::QUANTILE_METHOD.into()),
            ),
            (
                "phases",
                Json::Arr(vec![
                    per_conn.to_json(),
                    keepalive.to_json(),
                    coalesce.to_json(),
                ]),
            ),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_owned(), v))
        .collect(),
    );
    let path = std::path::Path::new(&out_dir).join("BENCH_serve.json");
    std::fs::write(&path, doc.render()).expect("writing BENCH_serve.json");
    println!("serve_bench: wrote {}", path.display());
    server.shutdown();

    if let Some(gate_path) = gate {
        match baseline_keepalive_rps(&gate_path) {
            Some(baseline) => {
                let floor = baseline * (1.0 - GATE_MAX_REGRESSION);
                println!(
                    "serve_bench: gate — keepalive {:.1} req/s vs baseline {:.1} req/s (floor {:.1})",
                    keepalive.throughput, baseline, floor
                );
                if keepalive.throughput < floor {
                    eprintln!(
                        "serve_bench: FAIL — keep-alive throughput regressed more than {:.0}%",
                        GATE_MAX_REGRESSION * 100.0
                    );
                    std::process::exit(1);
                }
            }
            None => {
                // A missing or pre-phase-format baseline cannot gate; flag
                // it loudly but let the run (which writes the new format)
                // succeed so the baseline can be established.
                eprintln!(
                    "serve_bench: warning — no keepalive baseline in {gate_path}; gate skipped"
                );
            }
        }
    }
}
