//! Serving latency/throughput benchmark: the perf trajectory of the
//! `faircap-serve` front end, recorded machine-readably.
//!
//! Boots an in-process server over the German-credit session, warms the
//! caches with one solve, then drives a closed-loop load phase — N client
//! threads issuing `POST /v1/solve` back-to-back through
//! `faircap_serve::ServeClient` — and reports p50/p90/p99 latency and
//! throughput. Results go to stdout
//! *and* to `BENCH_serve.json` (CWD, or the directory given as the first
//! argument) so CI can archive the trend.
//!
//! ```sh
//! cargo run --release -p faircap-bench --bin serve_bench [-- OUT_DIR]
//! ```

use faircap_bench::session_of;
use faircap_core::{Json, SessionRegistry};
use faircap_serve::{ServeConfig, Server};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Client threads in the measured phase.
const CONCURRENCY: usize = 8;
/// Requests per client thread.
const REQUESTS_PER_CLIENT: usize = 25;
/// Data seed for the benchmark dataset, recorded in every result entry.
const SEED: u64 = 42;

fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".into());
    let ds = faircap_data::german::generate(faircap_data::german::GERMAN_DEFAULT_ROWS, SEED);
    let rows = ds.df.n_rows();
    let session = session_of(&ds).expect("german dataset is well-formed");
    let registry = Arc::new(SessionRegistry::new());
    registry.register("german", session);

    let server = Server::start(
        ServeConfig {
            max_concurrent_solves: CONCURRENCY,
            solve_queue_depth: CONCURRENCY * 4,
            ..ServeConfig::default()
        },
        registry,
    )
    .expect("binding an ephemeral port");
    let client = server.client();
    client
        .wait_ready(Duration::from_secs(30))
        .expect("server boots");

    // Warm-up: the first solve pays full estimation; the measured phase is
    // the serving steady state (cache-hit solves), which is what a
    // production front end actually serves per request.
    let warm = client
        .post_json("/v1/solve", r#"{"max_rules": 5}"#)
        .expect("warm-up request");
    assert_eq!(warm.status, 200, "warm-up failed: {}", warm.body);
    println!(
        "serve_bench: german ({rows} rows) warmed, measuring {} requests × {} clients",
        REQUESTS_PER_CLIENT, CONCURRENCY
    );

    let started = Instant::now();
    let mut latencies_ms: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CONCURRENCY)
            .map(|_| {
                let client = client.clone();
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(REQUESTS_PER_CLIENT);
                    let mut rejected = 0u64;
                    for _ in 0..REQUESTS_PER_CLIENT {
                        let t0 = Instant::now();
                        let response = client
                            .post_json("/v1/solve", r#"{"max_rules": 5}"#)
                            .expect("bench request");
                        match response.status {
                            200 => local.push(t0.elapsed().as_secs_f64() * 1e3),
                            429 => rejected += 1,
                            other => panic!("unexpected status {other}: {}", response.body),
                        }
                    }
                    (local, rejected)
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| {
                let (local, rejected) = h.join().expect("bench client thread");
                assert_eq!(rejected, 0, "sized queue must admit the bench load");
                local
            })
            .collect()
    });
    let wall = started.elapsed();
    latencies_ms.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite latencies"));

    let completed = latencies_ms.len();
    let throughput = completed as f64 / wall.as_secs_f64();
    let mean = latencies_ms.iter().sum::<f64>() / completed as f64;
    let (p50, p90, p99) = (
        percentile_ms(&latencies_ms, 0.50),
        percentile_ms(&latencies_ms, 0.90),
        percentile_ms(&latencies_ms, 0.99),
    );
    let max = *latencies_ms.last().expect("non-empty");

    println!(
        "serve_bench: {completed} solves in {wall:.2?} → {throughput:.1} req/s \
         (p50 {p50:.2} ms, p90 {p90:.2} ms, p99 {p99:.2} ms, max {max:.2} ms)"
    );

    let num = |v: f64| Json::Num(v);
    let doc = Json::Obj(
        [
            ("benchmark", Json::Str("serve".into())),
            ("dataset", Json::Str("german".into())),
            ("rows", num(rows as f64)),
            ("seed", num(SEED as f64)),
            ("warm", Json::Bool(true)),
            ("concurrency", num(CONCURRENCY as f64)),
            ("requests", num(completed as f64)),
            ("wall_s", num(wall.as_secs_f64())),
            ("throughput_rps", num(throughput)),
            ("mean_ms", num(mean)),
            ("p50_ms", num(p50)),
            ("p90_ms", num(p90)),
            ("p99_ms", num(p99)),
            ("max_ms", num(max)),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_owned(), v))
        .collect(),
    );
    let path = std::path::Path::new(&out_dir).join("BENCH_serve.json");
    std::fs::write(&path, doc.render()).expect("writing BENCH_serve.json");
    println!("serve_bench: wrote {}", path.display());
    server.shutdown();
}
