//! Solve hot-path benchmark: cold vs. warm constraint-sweep latency,
//! recorded machine-readably and gated against a committed baseline.
//!
//! For each dataset the driver times the same three-constraint sweep
//! (none / statistical parity / bounded group loss — the `warm_start`
//! sweep) in three regimes:
//!
//! * `cold_sweep` — a fresh session per repetition: every CATE estimated,
//!   every lattice mined, the full Steps 1–3 pipeline;
//! * `warm_sweep_nocache` — a warmed session re-solved with
//!   `use_solve_cache(false)`: the estimate cache stays hot but grouping
//!   and intervention mining re-run per solve. This is the pre-cache warm
//!   path and the denominator of the headline speedup;
//! * `warm_sweep` — the same warmed session with the solve caches on:
//!   constraint-only re-solves skip Steps 1–2 via the intervention cache
//!   and only re-run the per-solve filter + greedy selection.
//!
//! The run **asserts** that the cached warm sweep returns rulesets
//! bit-identical to the uncached one (same rules, same benefit floats,
//! same summary) and that the cached sweep is at least
//! [`MIN_WARM_SPEEDUP`]× faster — the regression the cache exists to
//! prevent.
//!
//! Results go to stdout *and* `BENCH_solve.json` (CWD, or the directory
//! given as the first argument). With `--gate BASELINE.json`, each
//! (case, dataset) entry's best-of-reps time is compared against the
//! committed baseline's and the run exits 1 on a >20% regression (plus a
//! 1 ms absolute slack for timer noise); entries missing from the
//! baseline warn and skip so new datasets can land before their baseline.
//!
//! ```sh
//! cargo run --release -p faircap-bench --bin solve_bench \
//!     [-- OUT_DIR] [--gate BASELINE.json]
//! ```

use faircap_bench::session_of;
use faircap_core::{
    FairnessConstraint, FairnessScope, Json, PrescriptionSession, SolutionReport, SolveRequest,
};
use faircap_data::{german, so, Dataset};
use std::time::Instant;

/// Timed repetitions per case (best-of is what the gate compares). Five
/// reps because the warm sweep is fast enough that a single descheduling
/// can double a rep's wall-clock; best-of-5 keeps the gate about
/// regressions rather than scheduler luck.
const REPS: usize = 5;
/// Relative min-time increase vs. the baseline that fails the gate.
const GATE_MAX_REGRESSION: f64 = 0.20;
/// Absolute slack added to every gate ceiling: the warm sweep runs in
/// well under a millisecond, where scheduler jitter swamps any 20%
/// relative band. Irrelevant for the multi-ms cold cases.
const GATE_ABS_SLACK_MS: f64 = 1.0;
/// The cached warm sweep must beat the uncached warm sweep by at least
/// this factor or the run fails — the property this PR's solve caches
/// were built to deliver.
const MIN_WARM_SPEEDUP: f64 = 2.0;

struct Entry {
    case: String,
    dataset: String,
    rows: usize,
    reps: usize,
    min_ms: f64,
    mean_ms: f64,
}

impl Entry {
    fn to_json(&self) -> Json {
        Json::Obj(
            [
                ("case", Json::Str(self.case.clone())),
                ("dataset", Json::Str(self.dataset.clone())),
                ("rows", Json::Num(self.rows as f64)),
                ("reps", Json::Num(self.reps as f64)),
                ("min_ms", Json::Num(self.min_ms)),
                ("mean_ms", Json::Num(self.mean_ms)),
            ]
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
        )
    }
}

/// The `warm_start` constraint sweep: three solves differing only in the
/// fairness constraint, i.e. the workload the intervention cache targets.
fn sweep(use_solve_cache: bool) -> Vec<SolveRequest> {
    [
        FairnessConstraint::None,
        FairnessConstraint::StatisticalParity {
            scope: FairnessScope::Group,
            epsilon: 10_000.0,
        },
        FairnessConstraint::BoundedGroupLoss {
            scope: FairnessScope::Group,
            tau: 0.1,
        },
    ]
    .into_iter()
    .map(|f| {
        SolveRequest::default()
            .fairness(f)
            .use_solve_cache(use_solve_cache)
    })
    .collect()
}

fn run_sweep(session: &PrescriptionSession, use_solve_cache: bool) -> Vec<SolutionReport> {
    sweep(use_solve_cache)
        .iter()
        .map(|request| session.solve(request).expect("valid request"))
        .collect()
}

/// Time one case: `reps` timed runs, best-of and mean recorded.
fn bench_case(
    case: &str,
    dataset: &str,
    rows: usize,
    mut f: impl FnMut() -> Vec<SolutionReport>,
) -> (Entry, Vec<SolutionReport>) {
    let mut times_ms = Vec::with_capacity(REPS);
    let mut reports = Vec::new();
    for _ in 0..REPS {
        let t0 = Instant::now();
        reports = f();
        times_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let min_ms = times_ms.iter().copied().fold(f64::INFINITY, f64::min);
    let mean_ms = times_ms.iter().sum::<f64>() / times_ms.len() as f64;
    println!(
        "solve_bench: {dataset} ({rows} rows) {case:<20} min {min_ms:9.3} ms  mean {mean_ms:9.3} ms"
    );
    let entry = Entry {
        case: case.to_owned(),
        dataset: dataset.to_owned(),
        rows,
        reps: REPS,
        min_ms,
        mean_ms,
    };
    (entry, reports)
}

/// Assert two sweeps produced bit-identical rulesets: same rules in the
/// same order with the same benefit floats, and the same summaries.
fn assert_sweeps_identical(a: &[SolutionReport], b: &[SolutionReport], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: sweep lengths differ");
    for (x, y) in a.iter().zip(b) {
        let rx: Vec<String> = x.rules.iter().map(|r| r.to_string()).collect();
        let ry: Vec<String> = y.rules.iter().map(|r| r.to_string()).collect();
        assert_eq!(rx, ry, "{what}: rulesets differ");
        for (rx, ry) in x.rules.iter().zip(&y.rules) {
            assert_eq!(
                rx.benefit.to_bits(),
                ry.benefit.to_bits(),
                "{what}: rule benefits differ"
            );
        }
        assert_eq!(
            format!("{:?}", x.summary),
            format!("{:?}", y.summary),
            "{what}: summaries differ"
        );
        assert_eq!(x.constraints_met, y.constraints_met, "{what}");
    }
}

fn run_dataset(name: &str, ds: &Dataset, entries: &mut Vec<Entry>, speedups: &mut Vec<Json>) {
    let rows = ds.df.n_rows();

    // Cold: a fresh session per repetition, so nothing carries over.
    let (cold, _) = bench_case("cold_sweep", name, rows, || {
        let session = session_of(ds).expect("dataset is well-formed");
        run_sweep(&session, true)
    });

    // One warmed session for both warm regimes; the cold reps above used
    // their own sessions, so warm it explicitly once.
    let session = session_of(ds).expect("dataset is well-formed");
    run_sweep(&session, true);

    let (nocache, nocache_reports) = bench_case("warm_sweep_nocache", name, rows, || {
        run_sweep(&session, false)
    });
    let (warm, warm_reports) = bench_case("warm_sweep", name, rows, || run_sweep(&session, true));

    assert_sweeps_identical(
        &warm_reports,
        &nocache_reports,
        &format!("{name}: cached vs uncached warm sweep"),
    );
    let hot = session.solve_hot_stats();
    let cache = session.intervention_cache_stats();
    println!(
        "solve_bench: {name} session counters — solves {} / intervention-cache {} hits {} misses",
        hot.solves, cache.hits, cache.misses
    );
    assert!(cache.hits > 0, "{name}: warm sweep must hit the cache");

    let speedup = nocache.min_ms / warm.min_ms.max(1e-9);
    println!("solve_bench: {name} warm speedup (cached vs uncached): {speedup:.1}x");
    assert!(
        speedup >= MIN_WARM_SPEEDUP,
        "{name}: cached warm sweep only {speedup:.2}x faster than uncached \
         (need ≥{MIN_WARM_SPEEDUP}x)"
    );
    speedups.push(Json::Obj(vec![
        ("dataset".into(), Json::Str(name.to_owned())),
        ("warm_vs_nocache".into(), Json::Num(speedup)),
    ]));

    entries.push(cold);
    entries.push(nocache);
    entries.push(warm);
}

/// The committed baseline's `(case, dataset) → min_ms` map, if the file
/// parses as a solve-benchmark document.
fn baseline_times(path: &str) -> Option<Vec<(String, String, f64)>> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc = Json::parse(&text).ok()?;
    let Json::Arr(items) = doc.get("entries")? else {
        return None;
    };
    let mut out = Vec::new();
    for item in items {
        if let (Some(Json::Str(case)), Some(Json::Str(dataset)), Some(Json::Num(min))) =
            (item.get("case"), item.get("dataset"), item.get("min_ms"))
        {
            out.push((case.clone(), dataset.clone(), *min));
        }
    }
    Some(out)
}

fn main() {
    let mut out_dir = ".".to_owned();
    let mut gate: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--gate" => gate = Some(args.next().expect("--gate needs a baseline path")),
            _ => out_dir = arg,
        }
    }

    let mut entries = Vec::new();
    let mut speedups = Vec::new();
    run_dataset(
        "german",
        &german::generate(german::GERMAN_DEFAULT_ROWS, 42),
        &mut entries,
        &mut speedups,
    );
    run_dataset(
        "stackoverflow",
        &so::generate(10_000, 42),
        &mut entries,
        &mut speedups,
    );

    let doc = Json::Obj(vec![
        ("benchmark".into(), Json::Str("solve".into())),
        (
            "entries".into(),
            Json::Arr(entries.iter().map(Entry::to_json).collect()),
        ),
        ("speedups".into(), Json::Arr(speedups)),
    ]);
    let out_dir = out_dir.trim_end_matches('/');
    std::fs::create_dir_all(out_dir).expect("creating the output directory");
    let path = format!("{out_dir}/BENCH_solve.json");
    std::fs::write(&path, doc.render()).expect("writing BENCH_solve.json");
    println!("solve_bench: wrote {path}");

    if let Some(gate_path) = gate {
        match baseline_times(&gate_path) {
            Some(baseline) if !baseline.is_empty() => {
                let mut regressed = false;
                for entry in &entries {
                    let Some((_, _, base_min)) = baseline
                        .iter()
                        .find(|(c, d, _)| *c == entry.case && *d == entry.dataset)
                    else {
                        eprintln!(
                            "solve_bench: warning — no baseline for {} @ {}; skipped",
                            entry.case, entry.dataset
                        );
                        continue;
                    };
                    let ceiling = base_min * (1.0 + GATE_MAX_REGRESSION) + GATE_ABS_SLACK_MS;
                    let verdict = if entry.min_ms > ceiling {
                        regressed = true;
                        "REGRESSED"
                    } else {
                        "ok"
                    };
                    println!(
                        "solve_bench: gate {} @ {} — {:.3} ms vs baseline {:.3} ms (ceiling {:.3}): {}",
                        entry.case, entry.dataset, entry.min_ms, base_min, ceiling, verdict
                    );
                }
                if regressed {
                    eprintln!(
                        "solve_bench: FAIL — at least one case regressed more than {:.0}% \
                         vs {gate_path}",
                        GATE_MAX_REGRESSION * 100.0
                    );
                    std::process::exit(1);
                }
            }
            _ => {
                eprintln!(
                    "solve_bench: warning — no baseline entries in {gate_path}; gate skipped"
                );
            }
        }
    }
}
