//! Table 5 — effect of the fairness threshold ε: group and individual
//! statistical parity on Stack Overflow with ε ∈ {2.5K, 5K, 10K, 20K}.
//!
//! ```sh
//! cargo run --release -p faircap-bench --bin table5
//! ```

use faircap_bench::session_of;
use faircap_core::{FairnessConstraint, FairnessScope, SolutionReport, SolveRequest};
use faircap_data::so;

fn main() {
    let ds = so::generate(so::SO_DEFAULT_ROWS, 42);
    let session = session_of(&ds).expect("SO dataset is well-formed");
    println!("Table 5: Stack Overflow — varying the SP fairness threshold ε");
    println!("{}", SolutionReport::table_header());
    for scope in [FairnessScope::Group, FairnessScope::Individual] {
        for epsilon in [2_500.0, 5_000.0, 10_000.0, 20_000.0] {
            let request = SolveRequest::default()
                .fairness(FairnessConstraint::StatisticalParity { scope, epsilon });
            let scope_name = match scope {
                FairnessScope::Group => "Group SP",
                FairnessScope::Individual => "Individual SP",
            };
            let mut report = session.solve(&request).expect("request is valid");
            report.label = format!("{scope_name} ({:.1}K)", epsilon / 1_000.0);
            println!("{}", report.table_row());
        }
    }
    let stats = session.cache_stats();
    println!(
        "\n(one session, 8 solves: {} cache hits, {} estimations — ε-sweeps re-estimate nothing)",
        stats.hits, stats.misses
    );
    println!("\nShape targets (paper Table 5):");
    println!("  * group SP: unfairness grows with ε and stays ≤ ε; utility grows with ε;");
    println!("  * individual SP: per-rule gaps are ≤ ε but the worst-case ruleset");
    println!("    unfairness stays high (min/max semantics across rules).");
}
