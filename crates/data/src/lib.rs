//! # faircap-data
//!
//! Synthetic stand-ins for the paper's evaluation datasets, generated from
//! documented structural causal models with planted (known) treatment
//! effects:
//!
//! * [`so`] — Stack Overflow 2021 survey equivalent: 38 K rows, 20
//!   attributes (10 mutable), continuous salary, protected = low-GDP
//!   countries (≈21.5 %).
//! * [`german`] — German Credit equivalent: 1000 rows, 20 attributes (15
//!   mutable), binary credit outcome, protected = single females (≈9.2 %).
//! * [`dataset::Dataset`] — the bundle (frame + DAG + outcome + I/M split +
//!   protected pattern) every experiment consumes, with the Figure 4/5
//!   workload knobs (`subsample`, `restrict_attrs`) and the Table 6 DAG
//!   variants ([`dataset::DagVariant`]).

#![warn(missing_docs)]

pub mod dataset;
pub mod german;
pub mod so;

pub use dataset::{build_dag_variant, DagVariant, Dataset};
