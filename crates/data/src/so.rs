//! Synthetic Stack Overflow 2021 survey stand-in.
//!
//! The paper evaluates on the real survey (38 K rows, 20 attributes, 10 of
//! them mutable; protected group = respondents from low-GDP countries,
//! 21.5 % of rows). We cannot redistribute the survey, so this module
//! generates an SCM-based equivalent whose *planted* causal structure
//! reproduces the behaviours the paper's experiments depend on:
//!
//! * Confounding — age / country / experience drive both the mutable choices
//!   (education, role, …) and salary directly, so naive difference-in-means
//!   is biased and backdoor adjustment matters.
//! * Treatment-effect disparity — role-switch treatments ("work as a
//!   back-end developer") carry large salary effects for the non-protected
//!   group and much smaller ones for the protected group (≈ 3–4×), while
//!   education/major/hours treatments are near-parity. An unconstrained
//!   optimizer therefore picks unfair high-utility rules, and fairness
//!   constraints redirect it to the near-parity treatments — the central
//!   phenomenon of Tables 4 and 5.
//! * A non-causal correlate (`sexual_orientation`) with no salary edge, so
//!   association-based baselines can pick it up while FairCap cannot.
//!
//! Every coefficient is a named constant below; tests assert the estimators
//! recover them. Monetary scale matches the paper ($10 k fairness thresholds
//! carry over).

use crate::dataset::Dataset;
use faircap_causal::scm::{bernoulli, normal, Row, Scm};
use faircap_table::{Pattern, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// Immutable attributes, in the order used by `restrict_attrs`.
pub const SO_IMMUTABLE: [&str; 10] = [
    "age",
    "country",
    "gdp_group",
    "years_coding",
    "gender",
    "dependents",
    "student",
    "parents_education",
    "ethnicity",
    "sexual_orientation",
];

/// Mutable attributes, in the order used by `restrict_attrs`.
pub const SO_MUTABLE: [&str; 10] = [
    "dev_role",
    "education",
    "undergrad_major",
    "computer_hours",
    "org_size",
    "remote_work",
    "languages_count",
    "certifications",
    "open_source",
    "training",
];

/// Default row count, matching the paper's 38 K.
pub const SO_DEFAULT_ROWS: usize = 38_000;

// ---- Planted additive salary contributions (annual USD). ----
// Salary = BASE + gdp + age + experience + gender + Σ mutable effects + ε.

/// Baseline salary before any contribution.
pub const BASE_SALARY: f64 = 25_000.0;
/// Direct premium of residing in a high-GDP country.
pub const HIGH_GDP_PREMIUM: f64 = 32_000.0;
/// Direct premium of residing in a low-GDP country.
pub const LOW_GDP_PREMIUM: f64 = 4_000.0;
/// Residual noise standard deviation.
pub const NOISE_STD: f64 = 11_000.0;

/// Effect of `certifications = yes`, (non-protected, protected). Binary
/// mutable used by estimator ground-truth tests.
pub const CERTIFICATIONS_EFFECT: (f64, f64) = (6_000.0, 5_000.0);
/// Effect of `open_source = yes`.
pub const OPEN_SOURCE_EFFECT: (f64, f64) = (8_000.0, 6_000.0);
/// Effect of `training = yes` (deliberately parity).
pub const TRAINING_EFFECT: (f64, f64) = (4_000.0, 4_000.0);
/// Effect of `remote_work = yes`.
pub const REMOTE_EFFECT: (f64, f64) = (5_000.0, 2_000.0);

/// Role premiums (vs. the "other" baseline role), (non-protected, protected).
/// Backend/data-science roles are the deliberately *unfair* high-utility
/// treatments; fullstack/manager are closer to parity.
pub fn role_effect(role: &str, protected: bool) -> f64 {
    let (np, p) = match role {
        "backend" => (38_000.0, 11_000.0),
        "data_scientist" => (33_000.0, 12_000.0),
        "frontend" => (28_000.0, 13_000.0),
        "fullstack" => (22_000.0, 15_000.0),
        "manager" => (26_000.0, 19_000.0),
        "qa" => (6_000.0, 5_000.0),
        _ => (0.0, 0.0),
    };
    if protected {
        p
    } else {
        np
    }
}

/// Education premiums (vs. no degree), near parity across groups.
pub fn education_effect(level: &str, protected: bool) -> f64 {
    let scale = if protected { 0.8 } else { 1.0 };
    scale
        * match level {
            "bachelor" => 12_000.0,
            "master" => 16_000.0,
            "phd" => 18_000.0,
            _ => 0.0,
        }
}

/// Undergraduate-major premiums (vs. arts), moderate disparity.
pub fn major_effect(major: &str, protected: bool) -> f64 {
    let scale = if protected { 0.66 } else { 1.0 };
    scale
        * match major {
            "cs" => 19_000.0,
            "engineering" => 12_000.0,
            "science" => 7_000.0,
            "business" => 5_000.0,
            _ => 0.0,
        }
}

/// Daily-computer-hours premiums (vs. "<5"), near parity — the paper's
/// fairness-friendly treatment (rule S1b).
pub fn hours_effect(hours: &str, protected: bool) -> f64 {
    match (hours, protected) {
        ("5-8", false) => 6_000.0,
        ("5-8", true) => 5_000.0,
        ("9-12", false) => 14_000.0,
        ("9-12", true) => 12_000.0,
        (">12", false) => 10_000.0,
        (">12", true) => 8_000.0,
        _ => 0.0,
    }
}

/// Organization-size premiums (vs. small).
pub fn org_effect(size: &str, protected: bool) -> f64 {
    match (size, protected) {
        ("large", false) => 8_000.0,
        ("large", true) => 3_000.0,
        ("medium", false) => 4_000.0,
        ("medium", true) => 2_000.0,
        _ => 0.0,
    }
}

/// Languages-known premiums (vs. "1-2").
pub fn languages_effect(bucket: &str, protected: bool) -> f64 {
    match (bucket, protected) {
        ("3-5", false) => 4_000.0,
        ("3-5", true) => 3_000.0,
        ("6+", false) => 6_000.0,
        ("6+", true) => 5_000.0,
        _ => 0.0,
    }
}

/// Immutable contributions (age band, experience band, gender premium).
pub fn age_effect(age: &str) -> f64 {
    match age {
        "25-34" => 8_000.0,
        "35-44" => 14_000.0,
        "45-54" => 16_000.0,
        "55+" => 15_000.0,
        _ => 0.0,
    }
}

/// Experience-band contribution.
pub fn experience_effect(band: &str) -> f64 {
    match band {
        "3-5" => 4_000.0,
        "6-8" => 9_000.0,
        "9-11" => 13_000.0,
        "12+" => 17_000.0,
        _ => 0.0,
    }
}

/// Direct gender premium (an immutable, direct-discrimination term that
/// makes gender a genuine confounder of role choice).
pub const MALE_PREMIUM: f64 = 5_000.0;

/// Countries considered low-GDP; their total sampling mass is 21.5 %,
/// matching the paper's protected-group fraction.
pub const LOW_GDP_COUNTRIES: [&str; 4] = ["India", "Brazil", "Nigeria", "Ukraine"];

fn is_low_gdp(country: &str) -> bool {
    LOW_GDP_COUNTRIES.contains(&country)
}

/// Build the SO structural causal model. Exposed so tests can sample custom
/// sizes; use [`generate`] for the standard dataset bundle.
pub fn so_scm() -> Scm {
    let pick = |rng: &mut StdRng, probs: &[(&'static str, f64)]| -> String {
        let total: f64 = probs.iter().map(|(_, w)| w).sum();
        let mut x = rng.random::<f64>() * total;
        for (name, w) in probs {
            x -= w;
            if x <= 0.0 {
                return (*name).to_string();
            }
        }
        probs.last().unwrap().0.to_string()
    };

    Scm::new()
        // ---------- immutable layer ----------
        .categorical(
            "age",
            &[
                ("18-24", 0.18),
                ("25-34", 0.40),
                ("35-44", 0.25),
                ("45-54", 0.12),
                ("55+", 0.05),
            ],
        )
        .unwrap()
        .categorical(
            "country",
            &[
                ("US", 0.28),
                ("Germany", 0.12),
                ("UK", 0.09),
                ("Canada", 0.07),
                ("France", 0.06),
                ("Japan", 0.06),
                ("Australia", 0.04),
                ("Sweden", 0.04),
                ("Netherlands", 0.025),
                // low-GDP block: 21.5 % total
                ("India", 0.10),
                ("Brazil", 0.05),
                ("Nigeria", 0.04),
                ("Ukraine", 0.025),
            ],
        )
        .unwrap()
        .node(
            "gdp_group",
            &["country"],
            Box::new(|row, _| {
                Value::Str(
                    if is_low_gdp(row.str("country")) {
                        "low"
                    } else {
                        "high"
                    }
                    .into(),
                )
            }),
        )
        .unwrap()
        .node(
            "years_coding",
            &["age"],
            Box::new(move |row, rng| {
                let probs: &[(&str, f64)] = match row.str("age") {
                    "18-24" => &[
                        ("0-2", 0.45),
                        ("3-5", 0.40),
                        ("6-8", 0.13),
                        ("9-11", 0.02),
                        ("12+", 0.0),
                    ],
                    "25-34" => &[
                        ("0-2", 0.10),
                        ("3-5", 0.30),
                        ("6-8", 0.35),
                        ("9-11", 0.18),
                        ("12+", 0.07),
                    ],
                    "35-44" => &[
                        ("0-2", 0.04),
                        ("3-5", 0.10),
                        ("6-8", 0.22),
                        ("9-11", 0.28),
                        ("12+", 0.36),
                    ],
                    "45-54" => &[
                        ("0-2", 0.02),
                        ("3-5", 0.06),
                        ("6-8", 0.12),
                        ("9-11", 0.22),
                        ("12+", 0.58),
                    ],
                    _ => &[
                        ("0-2", 0.02),
                        ("3-5", 0.04),
                        ("6-8", 0.10),
                        ("9-11", 0.18),
                        ("12+", 0.66),
                    ],
                };
                Value::Str(pick(rng, probs))
            }),
        )
        .unwrap()
        .categorical(
            "gender",
            &[("male", 0.68), ("female", 0.27), ("nonbinary", 0.05)],
        )
        .unwrap()
        .node(
            "dependents",
            &["age"],
            Box::new(|row, rng| {
                let p = match row.str("age") {
                    "18-24" => 0.08,
                    "25-34" => 0.35,
                    "35-44" => 0.62,
                    "45-54" => 0.68,
                    _ => 0.45,
                };
                Value::Str(if bernoulli(rng, p) { "yes" } else { "no" }.into())
            }),
        )
        .unwrap()
        .node(
            "student",
            &["age"],
            Box::new(|row, rng| {
                let p = match row.str("age") {
                    "18-24" => 0.55,
                    "25-34" => 0.12,
                    _ => 0.03,
                };
                Value::Str(if bernoulli(rng, p) { "yes" } else { "no" }.into())
            }),
        )
        .unwrap()
        .categorical(
            "parents_education",
            &[("secondary", 0.45), ("bachelor", 0.35), ("advanced", 0.20)],
        )
        .unwrap()
        .categorical(
            "ethnicity",
            &[
                ("white", 0.52),
                ("asian", 0.22),
                ("hispanic", 0.12),
                ("black", 0.09),
                ("other", 0.05),
            ],
        )
        .unwrap()
        .categorical(
            "sexual_orientation",
            &[
                ("straight", 0.90),
                ("gay_lesbian", 0.05),
                ("bisexual", 0.05),
            ],
        )
        .unwrap()
        // ---------- mutable layer ----------
        .node(
            "education",
            &["age", "gdp_group", "parents_education", "student"],
            Box::new(move |row, rng| {
                let mut w_none: f64 = 0.30;
                let mut w_b: f64 = 0.42;
                let mut w_m: f64 = 0.20;
                let mut w_p: f64 = 0.08;
                if row.str("age") == "18-24" || row.str("student") == "yes" {
                    w_none += 0.35;
                    w_m *= 0.4;
                    w_p *= 0.2;
                }
                if row.str("gdp_group") == "low" {
                    w_m *= 0.7;
                    w_p *= 0.6;
                }
                match row.str("parents_education") {
                    "advanced" => {
                        w_m *= 1.6;
                        w_p *= 2.0;
                    }
                    "bachelor" => {
                        w_b *= 1.3;
                    }
                    _ => {}
                }
                let probs = [
                    ("none", w_none),
                    ("bachelor", w_b),
                    ("master", w_m),
                    ("phd", w_p),
                ];
                Value::Str(pick(rng, &probs))
            }),
        )
        .unwrap()
        .node(
            "dev_role",
            &["education", "years_coding", "gender", "ethnicity"],
            Box::new(move |row, rng| {
                let exp = row.str("years_coding");
                let experienced = matches!(exp, "9-11" | "12+");
                let educated = matches!(row.str("education"), "master" | "phd");
                let male = row.str("gender") == "male";
                let mut w: Vec<(&str, f64)> = vec![
                    ("backend", 0.22),
                    ("frontend", 0.14),
                    ("fullstack", 0.20),
                    ("data_scientist", 0.08),
                    ("qa", 0.08),
                    ("manager", 0.06),
                    ("other", 0.22),
                ];
                if experienced {
                    w[5].1 += 0.10; // manager
                    w[0].1 += 0.05;
                }
                if educated {
                    w[3].1 += 0.10; // data_scientist
                }
                if male {
                    w[0].1 += 0.06; // backend skew
                } else {
                    w[1].1 += 0.05; // frontend skew
                }
                if row.str("ethnicity") == "asian" {
                    w[3].1 += 0.02;
                }
                Value::Str(pick(rng, &w))
            }),
        )
        .unwrap()
        .node(
            "undergrad_major",
            &["parents_education", "student"],
            Box::new(move |row, rng| {
                let mut w: Vec<(&str, f64)> = vec![
                    ("cs", 0.38),
                    ("engineering", 0.22),
                    ("science", 0.14),
                    ("business", 0.12),
                    ("arts", 0.14),
                ];
                if row.str("parents_education") == "advanced" {
                    w[0].1 += 0.08;
                    w[2].1 += 0.04;
                }
                if row.str("student") == "yes" {
                    w[0].1 += 0.05;
                }
                Value::Str(pick(rng, &w))
            }),
        )
        .unwrap()
        .node(
            "computer_hours",
            &["age", "dependents"],
            Box::new(move |row, rng| {
                let deps = row.str("dependents") == "yes";
                let young = row.str("age") == "18-24";
                let w: [(&str, f64); 4] = if deps {
                    [("<5", 0.20), ("5-8", 0.42), ("9-12", 0.28), (">12", 0.10)]
                } else if young {
                    [("<5", 0.10), ("5-8", 0.30), ("9-12", 0.38), (">12", 0.22)]
                } else {
                    [("<5", 0.12), ("5-8", 0.36), ("9-12", 0.36), (">12", 0.16)]
                };
                Value::Str(pick(rng, &w))
            }),
        )
        .unwrap()
        .node(
            "org_size",
            &["gdp_group"],
            Box::new(move |row, rng| {
                let w: [(&str, f64); 3] = if row.str("gdp_group") == "high" {
                    [("small", 0.30), ("medium", 0.38), ("large", 0.32)]
                } else {
                    [("small", 0.44), ("medium", 0.36), ("large", 0.20)]
                };
                Value::Str(pick(rng, &w))
            }),
        )
        .unwrap()
        .node(
            "remote_work",
            &["gdp_group", "age"],
            Box::new(|row, rng| {
                let mut p: f64 = if row.str("gdp_group") == "high" {
                    0.45
                } else {
                    0.30
                };
                if row.str("age") == "18-24" {
                    p -= 0.10;
                }
                Value::Str(if bernoulli(rng, p) { "yes" } else { "no" }.into())
            }),
        )
        .unwrap()
        .node(
            "languages_count",
            &["years_coding"],
            Box::new(move |row, rng| {
                let w: [(&str, f64); 3] = match row.str("years_coding") {
                    "0-2" => [("1-2", 0.62), ("3-5", 0.33), ("6+", 0.05)],
                    "3-5" => [("1-2", 0.38), ("3-5", 0.50), ("6+", 0.12)],
                    "6-8" => [("1-2", 0.24), ("3-5", 0.54), ("6+", 0.22)],
                    _ => [("1-2", 0.14), ("3-5", 0.50), ("6+", 0.36)],
                };
                Value::Str(pick(rng, &w))
            }),
        )
        .unwrap()
        .node(
            "certifications",
            &["education"],
            Box::new(|row, rng| {
                let p = match row.str("education") {
                    "none" => 0.18,
                    "bachelor" => 0.30,
                    _ => 0.40,
                };
                Value::Str(if bernoulli(rng, p) { "yes" } else { "no" }.into())
            }),
        )
        .unwrap()
        .node(
            "open_source",
            &["years_coding", "student"],
            Box::new(|row, rng| {
                let mut p: f64 = match row.str("years_coding") {
                    "0-2" => 0.15,
                    "3-5" => 0.25,
                    "6-8" => 0.32,
                    _ => 0.40,
                };
                if row.str("student") == "yes" {
                    p += 0.08;
                }
                Value::Str(if bernoulli(rng, p) { "yes" } else { "no" }.into())
            }),
        )
        .unwrap()
        .node(
            "training",
            &["org_size"],
            Box::new(|row, rng| {
                let p = match row.str("org_size") {
                    "large" => 0.50,
                    "medium" => 0.35,
                    _ => 0.20,
                };
                Value::Str(if bernoulli(rng, p) { "yes" } else { "no" }.into())
            }),
        )
        .unwrap()
        // ---------- outcome ----------
        .node(
            "salary",
            &[
                "gdp_group",
                "age",
                "years_coding",
                "gender",
                "education",
                "undergrad_major",
                "dev_role",
                "computer_hours",
                "org_size",
                "remote_work",
                "languages_count",
                "certifications",
                "open_source",
                "training",
            ],
            Box::new(move |row: &Row<'_>, rng| {
                let protected = row.str("gdp_group") == "low";
                let mut s = BASE_SALARY;
                s += if protected {
                    LOW_GDP_PREMIUM
                } else {
                    HIGH_GDP_PREMIUM
                };
                s += age_effect(row.str("age"));
                s += experience_effect(row.str("years_coding"));
                if row.str("gender") == "male" {
                    s += MALE_PREMIUM;
                }
                s += education_effect(row.str("education"), protected);
                s += major_effect(row.str("undergrad_major"), protected);
                s += role_effect(row.str("dev_role"), protected);
                s += hours_effect(row.str("computer_hours"), protected);
                s += org_effect(row.str("org_size"), protected);
                if row.str("remote_work") == "yes" {
                    s += if protected {
                        REMOTE_EFFECT.1
                    } else {
                        REMOTE_EFFECT.0
                    };
                }
                s += languages_effect(row.str("languages_count"), protected);
                if row.str("certifications") == "yes" {
                    s += if protected {
                        CERTIFICATIONS_EFFECT.1
                    } else {
                        CERTIFICATIONS_EFFECT.0
                    };
                }
                if row.str("open_source") == "yes" {
                    s += if protected {
                        OPEN_SOURCE_EFFECT.1
                    } else {
                        OPEN_SOURCE_EFFECT.0
                    };
                }
                if row.str("training") == "yes" {
                    s += if protected {
                        TRAINING_EFFECT.1
                    } else {
                        TRAINING_EFFECT.0
                    };
                }
                s += normal(rng, 0.0, NOISE_STD);
                Value::Float(s.max(1_000.0))
            }),
        )
        .unwrap()
}

/// Generate the Stack Overflow stand-in dataset.
pub fn generate(n_rows: usize, seed: u64) -> Dataset {
    let scm = so_scm();
    let df = scm.sample(n_rows, seed).expect("SO SCM is well-formed");
    let dag = scm.dag();
    Dataset {
        name: "stackoverflow".into(),
        df,
        dag,
        outcome: "salary".into(),
        immutable: SO_IMMUTABLE.iter().map(|s| (*s).to_string()).collect(),
        mutable: SO_MUTABLE.iter().map(|s| (*s).to_string()).collect(),
        protected: Pattern::of_eq(&[("gdp_group", Value::from("low"))]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faircap_causal::{CateEngine, EstimatorKind};
    use faircap_table::Mask;

    fn small() -> Dataset {
        generate(6_000, 42)
    }

    #[test]
    fn shape_matches_paper() {
        let ds = generate(2_000, 1);
        assert_eq!(ds.df.n_rows(), 2_000);
        // 10 immutable + 10 mutable + country-derived + outcome = 21 columns.
        assert_eq!(ds.df.n_cols(), 21);
        assert_eq!(ds.immutable.len(), 10);
        assert_eq!(ds.mutable.len(), 10);
        for a in ds.attributes() {
            assert!(ds.df.has_column(&a), "{a} missing");
            assert!(ds.dag.has_node(&a), "{a} not in DAG");
        }
    }

    #[test]
    fn protected_fraction_near_21_5_percent() {
        let ds = small();
        let frac = ds.protected_fraction();
        assert!(
            (frac - 0.215).abs() < 0.02,
            "protected fraction {frac} should be ≈ 0.215"
        );
    }

    #[test]
    fn salary_magnitudes_realistic() {
        let ds = small();
        let all = Mask::ones(ds.df.n_rows());
        let mean = ds.df.mean("salary", &all).unwrap().unwrap();
        assert!((40_000.0..140_000.0).contains(&mean), "mean salary {mean}");
        // Low-GDP group earns substantially less on average.
        let prot = ds.protected_mask();
        let mean_p = ds.df.mean("salary", &prot).unwrap().unwrap();
        let mean_np = ds.df.mean("salary", &(!&prot)).unwrap().unwrap();
        assert!(mean_np - mean_p > 20_000.0, "{mean_np} vs {mean_p}");
    }

    #[test]
    fn certification_effect_recovered() {
        // Ground-truth check: the planted certification premium is ≈6k
        // (non-protected). Adjust with the DAG-derived set.
        let ds = generate(20_000, 7);
        let engine = CateEngine::new(
            std::sync::Arc::new(ds.df.clone()),
            std::sync::Arc::new(ds.dag.clone()),
            "salary",
        )
        .unwrap();
        let nonprot = !&ds.protected_mask();
        let p = Pattern::of_eq(&[("certifications", Value::from("yes"))]);
        let est = engine
            .cate(&nonprot, &p, &EstimatorKind::Linear)
            .expect("estimable");
        assert!(
            (est.cate - CERTIFICATIONS_EFFECT.0).abs() < 1_500.0,
            "estimated {} vs planted {}",
            est.cate,
            CERTIFICATIONS_EFFECT.0
        );
    }

    #[test]
    fn backend_effect_is_disparate() {
        let ds = generate(20_000, 3);
        let engine = CateEngine::new(
            std::sync::Arc::new(ds.df.clone()),
            std::sync::Arc::new(ds.dag.clone()),
            "salary",
        )
        .unwrap();
        let prot = ds.protected_mask();
        let nonprot = !&prot;
        let backend = Pattern::of_eq(&[("dev_role", Value::from("backend"))]);
        let e_np = engine
            .cate(&nonprot, &backend, &EstimatorKind::Linear)
            .expect("estimable");
        let e_p = engine
            .cate(&prot, &backend, &EstimatorKind::Linear)
            .expect("estimable");
        // CATE vs the control mix: the planted backend premium is 38k/11k
        // against a mixed-role control, so the measured effect is lower but
        // the disparity must remain large.
        assert!(
            e_np.cate > e_p.cate + 8_000.0,
            "non-protected {} should far exceed protected {}",
            e_np.cate,
            e_p.cate
        );
        assert!(e_np.cate > 15_000.0, "backend effect {}", e_np.cate);
    }

    #[test]
    fn training_effect_is_parity() {
        let ds = generate(20_000, 9);
        let engine = CateEngine::new(
            std::sync::Arc::new(ds.df.clone()),
            std::sync::Arc::new(ds.dag.clone()),
            "salary",
        )
        .unwrap();
        let prot = ds.protected_mask();
        let nonprot = !&prot;
        let p = Pattern::of_eq(&[("training", Value::from("yes"))]);
        let e_np = engine
            .cate(&nonprot, &p, &EstimatorKind::Linear)
            .expect("estimable");
        let e_p = engine
            .cate(&prot, &p, &EstimatorKind::Linear)
            .expect("estimable");
        assert!(
            (e_np.cate - e_p.cate).abs() < 2_500.0,
            "training should be parity: {} vs {}",
            e_np.cate,
            e_p.cate
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(500, 5);
        let b = generate(500, 5);
        assert_eq!(a.df, b.df);
    }

    #[test]
    fn restrict_attrs_shrinks_workload() {
        let ds = small();
        let r = ds.restrict_attrs(5, 3);
        assert_eq!(r.immutable.len(), 5);
        assert_eq!(r.mutable.len(), 3);
        assert_eq!(r.df.n_cols(), 9);
        assert!(r.dag.has_node("salary"));
    }

    #[test]
    fn subsample_scales_rows() {
        let ds = small();
        let half = ds.subsample(0.5, 11);
        let ratio = half.df.n_rows() as f64 / ds.df.n_rows() as f64;
        assert!((ratio - 0.5).abs() < 0.05, "ratio {ratio}");
        assert_eq!(half.df.n_cols(), ds.df.n_cols());
    }

    #[test]
    fn sexual_orientation_not_causal_for_salary() {
        let ds = small();
        let so = ds.dag.node("sexual_orientation").unwrap();
        let sal = ds.dag.node("salary").unwrap();
        assert!(!ds.dag.is_reachable(so, sal));
    }
}
