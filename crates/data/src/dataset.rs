//! The dataset bundle every FairCap experiment consumes.

use faircap_causal::discovery::{pc_dag, PcConfig};
use faircap_causal::Dag;
use faircap_table::{DataFrame, Mask, Pattern};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dataset plus all the causal/fairness metadata FairCap needs:
/// the frame, the ground-truth DAG, the outcome attribute, the
/// immutable/mutable split (Definition 4.3), and the protected-group
/// pattern (§4.1).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable name ("stackoverflow", "german", …).
    pub name: String,
    /// The data.
    pub df: DataFrame,
    /// Causal DAG over the frame's columns.
    pub dag: Dag,
    /// Outcome attribute `O`.
    pub outcome: String,
    /// Immutable attributes `I` (grouping-pattern vocabulary).
    pub immutable: Vec<String>,
    /// Mutable attributes `M` (intervention-pattern vocabulary).
    pub mutable: Vec<String>,
    /// Protected-group pattern `P_p`.
    pub protected: Pattern,
}

impl Dataset {
    /// Mask of protected rows.
    pub fn protected_mask(&self) -> Mask {
        self.protected
            .coverage(&self.df)
            .expect("protected pattern must evaluate against the frame")
    }

    /// Fraction of rows in the protected group.
    pub fn protected_fraction(&self) -> f64 {
        self.protected_mask().fraction()
    }

    /// Restrict to the first `n_immutable` immutable and `n_mutable` mutable
    /// attributes (plus the outcome), with the induced sub-DAG — the
    /// workload knob of the paper's Figure 5.
    pub fn restrict_attrs(&self, n_immutable: usize, n_mutable: usize) -> Dataset {
        let immutable: Vec<String> = self.immutable.iter().take(n_immutable).cloned().collect();
        let mutable: Vec<String> = self.mutable.iter().take(n_mutable).cloned().collect();
        let mut cols: Vec<String> = immutable.clone();
        cols.extend(mutable.iter().cloned());
        cols.push(self.outcome.clone());
        let keep: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
        Dataset {
            name: format!("{}[{}i,{}m]", self.name, n_immutable, n_mutable),
            df: self.df.select(&keep).expect("attribute subset must exist"),
            dag: self.dag.induced_subgraph(&keep),
            outcome: self.outcome.clone(),
            immutable,
            mutable,
            protected: self.protected.clone(),
        }
    }

    /// Keep a random `fraction` of rows (seeded) — the paper's Figure 4
    /// dataset-size knob.
    pub fn subsample(&self, fraction: f64, seed: u64) -> Dataset {
        assert!((0.0..=1.0).contains(&fraction), "fraction in [0, 1]");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mask = Mask::zeros(self.df.n_rows());
        for i in 0..self.df.n_rows() {
            if rng.random::<f64>() < fraction {
                mask.set(i, true);
            }
        }
        Dataset {
            name: format!("{}[{:.0}%]", self.name, fraction * 100.0),
            df: self.df.filter(&mask).expect("mask is frame-sized"),
            dag: self.dag.clone(),
            outcome: self.outcome.clone(),
            immutable: self.immutable.clone(),
            mutable: self.mutable.clone(),
            protected: self.protected.clone(),
        }
    }

    /// All non-outcome attributes, immutables first.
    pub fn attributes(&self) -> Vec<String> {
        let mut v = self.immutable.clone();
        v.extend(self.mutable.iter().cloned());
        v
    }

    /// Persist the frame as CSV (useful for inspecting the generated data
    /// or feeding it to external tools).
    pub fn to_csv<P: AsRef<std::path::Path>>(&self, path: P) -> faircap_table::Result<()> {
        faircap_table::csv::write_csv(&self.df, path)
    }
}

/// The causal-DAG robustness variants of the paper's Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DagVariant {
    /// The generator's ground-truth DAG.
    Original,
    /// Every attribute points only at the outcome (ignoring the graph).
    OneLayerIndep,
    /// Immutables → each mutable → outcome; immutables do not hit the
    /// outcome directly (all immutables act as pure confounders).
    TwoLayerMutable,
    /// Immutables → each mutable; *all* attributes → outcome.
    TwoLayer,
    /// DAG recovered by the PC algorithm from the data.
    Pc,
}

impl DagVariant {
    /// Display name matching Table 6's row labels.
    pub fn label(&self) -> &'static str {
        match self {
            DagVariant::Original => "Original causal DAG",
            DagVariant::OneLayerIndep => "1-Layer Indep DAG",
            DagVariant::TwoLayerMutable => "2-Layer Mutable DAG",
            DagVariant::TwoLayer => "2-Layer DAG",
            DagVariant::Pc => "PC DAG",
        }
    }

    /// All five variants in the paper's row order.
    pub fn all() -> [DagVariant; 5] {
        [
            DagVariant::Original,
            DagVariant::OneLayerIndep,
            DagVariant::TwoLayerMutable,
            DagVariant::TwoLayer,
            DagVariant::Pc,
        ]
    }
}

/// Build the DAG for a [`DagVariant`] of a dataset. `Pc` runs PC-stable
/// discovery over all attributes plus the outcome (can take a while on
/// large frames).
pub fn build_dag_variant(ds: &Dataset, variant: DagVariant) -> Dag {
    match variant {
        DagVariant::Original => ds.dag.clone(),
        DagVariant::OneLayerIndep => {
            let mut g = Dag::new();
            g.ensure_node(&ds.outcome);
            for a in ds.attributes() {
                g.add_edge_by_name(&a, &ds.outcome)
                    .expect("star is acyclic");
            }
            g
        }
        DagVariant::TwoLayerMutable => {
            let mut g = Dag::new();
            g.ensure_node(&ds.outcome);
            for m in &ds.mutable {
                for i in &ds.immutable {
                    g.add_edge_by_name(i, m).expect("bipartite is acyclic");
                }
                g.add_edge_by_name(m, &ds.outcome).expect("acyclic");
            }
            g
        }
        DagVariant::TwoLayer => {
            let mut g = build_dag_variant(ds, DagVariant::TwoLayerMutable);
            for i in &ds.immutable {
                g.add_edge_by_name(i, &ds.outcome).expect("acyclic");
            }
            g
        }
        DagVariant::Pc => {
            let mut vars = ds.attributes();
            vars.push(ds.outcome.clone());
            pc_dag(&ds.df, &vars, PcConfig::default())
                .expect("PC discovery should not fail on generated data")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::so;

    #[test]
    fn dag_variant_labels_match_table6() {
        assert_eq!(DagVariant::Original.label(), "Original causal DAG");
        assert_eq!(DagVariant::Pc.label(), "PC DAG");
        assert_eq!(DagVariant::all().len(), 5);
    }

    #[test]
    fn one_layer_variant_is_a_star() {
        let ds = so::generate(300, 1);
        let g = build_dag_variant(&ds, DagVariant::OneLayerIndep);
        let o = g.node(&ds.outcome).unwrap();
        for a in ds.attributes() {
            let n = g.node(&a).unwrap();
            assert!(g.has_edge(n, o));
            assert!(g.parents(n).is_empty());
        }
    }

    #[test]
    fn two_layer_mutable_has_no_direct_immutable_outcome_edges() {
        let ds = so::generate(300, 1);
        let g = build_dag_variant(&ds, DagVariant::TwoLayerMutable);
        let o = g.node(&ds.outcome).unwrap();
        for i in &ds.immutable {
            let n = g.node(i).unwrap();
            assert!(!g.has_edge(n, o), "{i} must not hit the outcome directly");
        }
        for m in &ds.mutable {
            let n = g.node(m).unwrap();
            assert!(g.has_edge(n, o));
        }
    }

    #[test]
    fn csv_export_roundtrips() {
        let ds = so::generate(50, 9);
        let dir = std::env::temp_dir().join("faircap_dataset_csv");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("so_sample.csv");
        ds.to_csv(&path).unwrap();
        let back = faircap_table::csv::read_csv(&path).unwrap();
        assert_eq!(back.n_rows(), 50);
        assert_eq!(back.names(), ds.df.names());
    }

    #[test]
    fn subsample_is_deterministic() {
        let ds = so::generate(500, 2);
        let a = ds.subsample(0.4, 3);
        let b = ds.subsample(0.4, 3);
        assert_eq!(a.df, b.df);
        assert_ne!(a.df, ds.subsample(0.4, 4).df);
    }
}
