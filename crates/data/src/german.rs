//! Synthetic German Credit stand-in.
//!
//! The paper's second dataset: 1000 account holders, 20 attributes (15
//! mutable), binary outcome `good_credit`, protected group = single females
//! (9.2 % of rows), BGL fairness. This module generates an SCM equivalent:
//! the outcome is a Bernoulli draw from a logistic structural equation whose
//! coefficients are the named constants below. Effects are on the log-odds
//! scale; the resulting probability-scale CATEs land in the paper's
//! 0.2–0.5 range so its thresholds (τ = 0.1) carry over.
//!
//! Disparity is planted the same way as in the SO generator: some
//! treatments (checking balance, housing) help the non-protected group
//! substantially more, while others (savings, skilled employment) are near
//! parity — so BGL constraints redirect the optimizer.

use crate::dataset::Dataset;
use faircap_causal::scm::{bernoulli, Row, Scm};
use faircap_table::{Pattern, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// Immutable attributes.
pub const GERMAN_IMMUTABLE: [&str; 5] = [
    "age_group",
    "sex",
    "personal_status",
    "foreign_worker",
    "dependents",
];

/// Mutable attributes (15, as in the paper's Table 3).
pub const GERMAN_MUTABLE: [&str; 15] = [
    "checking_balance",
    "savings",
    "employment",
    "job_skill",
    "housing",
    "purpose",
    "credit_amount",
    "duration",
    "installment_rate",
    "other_debtors",
    "property",
    "telephone",
    "existing_credits",
    "residence_since",
    "loan_plans",
];

/// Default row count, matching the original dataset.
pub const GERMAN_DEFAULT_ROWS: usize = 1_000;

/// Baseline log-odds of a good credit score.
pub const BASE_LOGIT: f64 = -1.1;

/// Log-odds effect of `checking_balance = "200+"`, (non-protected,
/// protected): the deliberately *unfair* high-utility treatment.
pub const CHECKING_200_EFFECT: (f64, f64) = (1.9, 0.7);
/// Log-odds effect of `savings = "500+"` — near parity.
pub const SAVINGS_500_EFFECT: (f64, f64) = (1.1, 1.0);
/// Log-odds effect of `job_skill = "skilled"` — near parity.
pub const SKILLED_EFFECT: (f64, f64) = (0.9, 0.85);
/// Log-odds effect of `housing = "own"` — moderately unfair.
pub const HOUSING_OWN_EFFECT: (f64, f64) = (1.0, 0.5);

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Build the German Credit structural causal model.
pub fn german_scm() -> Scm {
    let pick = |rng: &mut StdRng, probs: &[(&'static str, f64)]| -> String {
        let total: f64 = probs.iter().map(|(_, w)| w).sum();
        let mut x = rng.random::<f64>() * total;
        for (name, w) in probs {
            x -= w;
            if x <= 0.0 {
                return (*name).to_string();
            }
        }
        probs.last().unwrap().0.to_string()
    };

    Scm::new()
        // ---------- immutable layer ----------
        .categorical(
            "age_group",
            &[
                ("19-25", 0.20),
                ("26-35", 0.33),
                ("36-49", 0.30),
                ("50+", 0.17),
            ],
        )
        .unwrap()
        .categorical("sex", &[("male", 0.69), ("female", 0.31)])
        .unwrap()
        .node(
            "personal_status",
            &["sex", "age_group"],
            Box::new(move |row, rng| {
                // single-female mass ≈ 0.31 × 0.30 ≈ 9.2 % of all rows.
                let single_p = match (row.str("sex"), row.str("age_group")) {
                    ("female", "19-25") => 0.52,
                    ("female", "26-35") => 0.33,
                    ("female", _) => 0.17,
                    ("male", "19-25") => 0.62,
                    ("male", "26-35") => 0.40,
                    _ => 0.22,
                };
                let probs = [
                    ("single", single_p),
                    ("married", (1.0 - single_p) * 0.75),
                    ("divorced", (1.0 - single_p) * 0.25),
                ];
                Value::Str(pick(rng, &probs))
            }),
        )
        .unwrap()
        .categorical("foreign_worker", &[("yes", 0.07), ("no", 0.93)])
        .unwrap()
        .node(
            "dependents",
            &["age_group", "personal_status"],
            Box::new(|row, rng| {
                let mut p: f64 = match row.str("age_group") {
                    "19-25" => 0.10,
                    "26-35" => 0.35,
                    _ => 0.45,
                };
                if row.str("personal_status") == "single" {
                    p *= 0.4;
                }
                Value::Str(if bernoulli(rng, p) { "1+" } else { "0" }.into())
            }),
        )
        .unwrap()
        // ---------- mutable layer ----------
        .node(
            "employment",
            &["age_group"],
            Box::new(move |row, rng| {
                let probs: &[(&str, f64)] = match row.str("age_group") {
                    "19-25" => &[
                        ("unemployed", 0.14),
                        ("<1y", 0.34),
                        ("1-4y", 0.38),
                        ("4y+", 0.14),
                    ],
                    "26-35" => &[
                        ("unemployed", 0.07),
                        ("<1y", 0.18),
                        ("1-4y", 0.42),
                        ("4y+", 0.33),
                    ],
                    _ => &[
                        ("unemployed", 0.05),
                        ("<1y", 0.08),
                        ("1-4y", 0.30),
                        ("4y+", 0.57),
                    ],
                };
                Value::Str(pick(rng, probs))
            }),
        )
        .unwrap()
        .node(
            "job_skill",
            &["employment"],
            Box::new(move |row, rng| {
                let probs: &[(&str, f64)] = match row.str("employment") {
                    "4y+" => &[
                        ("unskilled", 0.12),
                        ("skilled", 0.58),
                        ("highly_skilled", 0.30),
                    ],
                    "1-4y" => &[
                        ("unskilled", 0.22),
                        ("skilled", 0.60),
                        ("highly_skilled", 0.18),
                    ],
                    _ => &[
                        ("unskilled", 0.40),
                        ("skilled", 0.50),
                        ("highly_skilled", 0.10),
                    ],
                };
                Value::Str(pick(rng, probs))
            }),
        )
        .unwrap()
        .node(
            "checking_balance",
            &["employment", "sex"],
            Box::new(move |row, rng| {
                let mut w: Vec<(&str, f64)> = vec![
                    ("none", 0.36),
                    ("<100", 0.28),
                    ("100-200", 0.16),
                    ("200+", 0.20),
                ];
                if row.str("employment") == "4y+" {
                    w[3].1 += 0.12;
                    w[0].1 -= 0.08;
                }
                if row.str("sex") == "female" {
                    w[3].1 -= 0.04;
                }
                Value::Str(pick(rng, &w))
            }),
        )
        .unwrap()
        .node(
            "savings",
            &["employment"],
            Box::new(move |row, rng| {
                let probs: &[(&str, f64)] = match row.str("employment") {
                    "4y+" => &[("none", 0.30), ("<500", 0.38), ("500+", 0.32)],
                    _ => &[("none", 0.48), ("<500", 0.36), ("500+", 0.16)],
                };
                Value::Str(pick(rng, probs))
            }),
        )
        .unwrap()
        .node(
            "housing",
            &["age_group", "personal_status"],
            Box::new(move |row, rng| {
                let own_p: f64 = match row.str("age_group") {
                    "19-25" => 0.25,
                    "26-35" => 0.52,
                    _ => 0.68,
                };
                let own_p = if row.str("personal_status") == "single" {
                    own_p * 0.7
                } else {
                    own_p
                };
                let probs = [
                    ("own", own_p),
                    ("rent", (1.0 - own_p) * 0.8),
                    ("free", (1.0 - own_p) * 0.2),
                ];
                Value::Str(pick(rng, &probs))
            }),
        )
        .unwrap()
        .categorical(
            "purpose",
            &[
                ("car_new", 0.22),
                ("car_used", 0.10),
                ("furniture", 0.18),
                ("radio_tv", 0.27),
                ("education", 0.06),
                ("business", 0.09),
                ("unspecified", 0.08),
            ],
        )
        .unwrap()
        .node(
            "credit_amount",
            &["purpose"],
            Box::new(move |row, rng| {
                let probs: &[(&str, f64)] = match row.str("purpose") {
                    "business" | "car_new" => &[("low", 0.18), ("mid", 0.42), ("high", 0.40)],
                    "radio_tv" | "furniture" => &[("low", 0.52), ("mid", 0.36), ("high", 0.12)],
                    _ => &[("low", 0.34), ("mid", 0.40), ("high", 0.26)],
                };
                Value::Str(pick(rng, probs))
            }),
        )
        .unwrap()
        .node(
            "duration",
            &["credit_amount"],
            Box::new(move |row, rng| {
                let probs: &[(&str, f64)] = match row.str("credit_amount") {
                    "high" => &[("short", 0.12), ("mid", 0.38), ("long", 0.50)],
                    "mid" => &[("short", 0.30), ("mid", 0.48), ("long", 0.22)],
                    _ => &[("short", 0.55), ("mid", 0.35), ("long", 0.10)],
                };
                Value::Str(pick(rng, probs))
            }),
        )
        .unwrap()
        .categorical(
            "installment_rate",
            &[("1", 0.14), ("2", 0.23), ("3", 0.16), ("4", 0.47)],
        )
        .unwrap()
        .categorical(
            "other_debtors",
            &[("none", 0.91), ("guarantor", 0.05), ("co_applicant", 0.04)],
        )
        .unwrap()
        .node(
            "property",
            &["housing"],
            Box::new(move |row, rng| {
                let probs: &[(&str, f64)] = if row.str("housing") == "own" {
                    &[
                        ("real_estate", 0.45),
                        ("savings_ins", 0.25),
                        ("car", 0.22),
                        ("none", 0.08),
                    ]
                } else {
                    &[
                        ("real_estate", 0.10),
                        ("savings_ins", 0.24),
                        ("car", 0.36),
                        ("none", 0.30),
                    ]
                };
                Value::Str(pick(rng, probs))
            }),
        )
        .unwrap()
        .node(
            "telephone",
            &["job_skill"],
            Box::new(|row, rng| {
                let p = if row.str("job_skill") == "highly_skilled" {
                    0.72
                } else {
                    0.36
                };
                Value::Str(if bernoulli(rng, p) { "yes" } else { "none" }.into())
            }),
        )
        .unwrap()
        .categorical("existing_credits", &[("1", 0.63), ("2+", 0.37)])
        .unwrap()
        .node(
            "residence_since",
            &["age_group"],
            Box::new(|row, rng| {
                let p = match row.str("age_group") {
                    "19-25" => 0.30,
                    "26-35" => 0.45,
                    _ => 0.62,
                };
                Value::Str(if bernoulli(rng, p) { "4y+" } else { "<4y" }.into())
            }),
        )
        .unwrap()
        .categorical(
            "loan_plans",
            &[("none", 0.81), ("bank", 0.14), ("stores", 0.05)],
        )
        .unwrap()
        // ---------- outcome ----------
        .node(
            "good_credit",
            &[
                "sex",
                "personal_status",
                "age_group",
                "checking_balance",
                "savings",
                "employment",
                "job_skill",
                "housing",
                "duration",
                "credit_amount",
                "installment_rate",
                "other_debtors",
                "property",
                "existing_credits",
                "loan_plans",
            ],
            Box::new(move |row: &Row<'_>, rng| {
                let protected =
                    row.str("sex") == "female" && row.str("personal_status") == "single";
                let pick2 = |pair: (f64, f64)| if protected { pair.1 } else { pair.0 };
                let mut x = BASE_LOGIT;
                // immutable contributions
                x += match row.str("age_group") {
                    "19-25" => -0.3,
                    "36-49" => 0.2,
                    "50+" => 0.25,
                    _ => 0.0,
                };
                // mutable contributions (treatment effects)
                x += match row.str("checking_balance") {
                    "200+" => pick2(CHECKING_200_EFFECT),
                    "100-200" => pick2((0.8, 0.4)),
                    "<100" => 0.15,
                    _ => 0.0,
                };
                x += match row.str("savings") {
                    "500+" => pick2(SAVINGS_500_EFFECT),
                    "<500" => 0.35,
                    _ => 0.0,
                };
                x += match row.str("employment") {
                    "4y+" => 0.55,
                    "1-4y" => 0.30,
                    "<1y" => 0.10,
                    _ => 0.0,
                };
                x += match row.str("job_skill") {
                    "highly_skilled" => pick2((1.0, 0.95)),
                    "skilled" => pick2(SKILLED_EFFECT),
                    _ => 0.0,
                };
                x += match row.str("housing") {
                    "own" => pick2(HOUSING_OWN_EFFECT),
                    "free" => 0.2,
                    _ => 0.0,
                };
                x += match row.str("duration") {
                    "long" => -0.55,
                    "mid" => -0.20,
                    _ => 0.0,
                };
                x += match row.str("credit_amount") {
                    "high" => -0.40,
                    "mid" => -0.10,
                    _ => 0.0,
                };
                x += match row.str("installment_rate") {
                    "4" => -0.25,
                    "3" => -0.10,
                    _ => 0.0,
                };
                x += match row.str("other_debtors") {
                    "guarantor" => 0.5,
                    "co_applicant" => -0.2,
                    _ => 0.0,
                };
                x += match row.str("property") {
                    "real_estate" => 0.35,
                    "savings_ins" => 0.20,
                    "car" => 0.10,
                    _ => 0.0,
                };
                x += if row.str("existing_credits") == "2+" {
                    -0.15
                } else {
                    0.0
                };
                x += match row.str("loan_plans") {
                    "bank" => -0.35,
                    "stores" => -0.25,
                    _ => 0.0,
                };
                Value::Bool(bernoulli(rng, sigmoid(x)))
            }),
        )
        .unwrap()
}

/// Generate the German Credit stand-in dataset.
pub fn generate(n_rows: usize, seed: u64) -> Dataset {
    let scm = german_scm();
    let df = scm.sample(n_rows, seed).expect("German SCM is well-formed");
    let dag = scm.dag();
    Dataset {
        name: "german".into(),
        df,
        dag,
        outcome: "good_credit".into(),
        immutable: GERMAN_IMMUTABLE.iter().map(|s| (*s).to_string()).collect(),
        mutable: GERMAN_MUTABLE.iter().map(|s| (*s).to_string()).collect(),
        protected: Pattern::of_eq(&[
            ("sex", Value::from("female")),
            ("personal_status", Value::from("single")),
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faircap_causal::{CateEngine, EstimatorKind};
    use faircap_table::Mask;

    #[test]
    fn shape_matches_paper() {
        let ds = generate(GERMAN_DEFAULT_ROWS, 1);
        assert_eq!(ds.df.n_rows(), 1_000);
        // 5 immutable + 15 mutable + outcome = 21 columns.
        assert_eq!(ds.df.n_cols(), 21);
        assert_eq!(ds.mutable.len(), 15);
        for a in ds.attributes() {
            assert!(ds.dag.has_node(&a), "{a} not in DAG");
        }
    }

    #[test]
    fn protected_fraction_near_9_2_percent() {
        let ds = generate(20_000, 2); // large n for a tight check
        let frac = ds.protected_fraction();
        assert!(
            (frac - 0.092).abs() < 0.015,
            "single females {frac} should be ≈ 0.092"
        );
    }

    #[test]
    fn outcome_is_binary_with_sane_base_rate() {
        let ds = generate(5_000, 3);
        let all = Mask::ones(ds.df.n_rows());
        let rate = ds.df.mean("good_credit", &all).unwrap().unwrap();
        assert!((0.4..0.9).contains(&rate), "base rate {rate}");
    }

    #[test]
    fn checking_effect_disparate_savings_parity() {
        let ds = generate(30_000, 4);
        let engine = CateEngine::new(
            std::sync::Arc::new(ds.df.clone()),
            std::sync::Arc::new(ds.dag.clone()),
            "good_credit",
        )
        .unwrap();
        let prot = ds.protected_mask();
        let nonprot = !&prot;
        let checking = Pattern::of_eq(&[("checking_balance", Value::from("200+"))]);
        let c_np = engine
            .cate(&nonprot, &checking, &EstimatorKind::Linear)
            .expect("estimable");
        let c_p = engine
            .cate(&prot, &checking, &EstimatorKind::Linear)
            .expect("estimable");
        assert!(
            c_np.cate > c_p.cate + 0.05,
            "checking 200+ should be disparate: {} vs {}",
            c_np.cate,
            c_p.cate
        );
        let savings = Pattern::of_eq(&[("savings", Value::from("500+"))]);
        let s_np = engine
            .cate(&nonprot, &savings, &EstimatorKind::Linear)
            .expect("estimable");
        let s_p = engine
            .cate(&prot, &savings, &EstimatorKind::Linear)
            .expect("estimable");
        assert!(
            (s_np.cate - s_p.cate).abs() < 0.08,
            "savings should be parity: {} vs {}",
            s_np.cate,
            s_p.cate
        );
    }

    #[test]
    fn effects_are_probability_scale() {
        let ds = generate(30_000, 5);
        let engine = CateEngine::new(
            std::sync::Arc::new(ds.df.clone()),
            std::sync::Arc::new(ds.dag.clone()),
            "good_credit",
        )
        .unwrap();
        let all = Mask::ones(ds.df.n_rows());
        let checking = Pattern::of_eq(&[("checking_balance", Value::from("200+"))]);
        let est = engine
            .cate(&all, &checking, &EstimatorKind::Linear)
            .expect("estimable");
        assert!(
            (0.05..0.6).contains(&est.cate),
            "probability-scale CATE, got {}",
            est.cate
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate(300, 9).df, generate(300, 9).df);
    }
}
