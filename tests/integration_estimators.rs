//! Estimator-correctness integration tests: the double-robustness property
//! of AIPW under deliberately misspecified nuisance models, matching vs.
//! stratification agreement on exactly matched covariates, and end-to-end
//! German-credit rulesets under the new estimators.
//!
//! The misspecification fixtures are deterministic (no sampling noise), so
//! the consistency assertions are tight: when the nuisance model that AIPW
//! still gets right is *exactly* fitted, the doubly-robust score cancels
//! the other model's bias to machine precision.

use faircap::causal::{estimate_cate, Estimator, EstimatorKind};
use faircap::data::german;
use faircap::table::{DataFrame, Mask};
use faircap::{FairCap, SolveRequest};

/// Planted treatment effect shared by the misspecification fixtures.
const TAU: f64 = 10.0;

/// Fixture 1 — **outcome model misspecified, propensity model correct.**
///
/// `z ∈ {−1, 0, 1}`, treatment rates `p(z) = σ(ln3 + ln3·z)` =
/// (0.5, 0.75, 0.9) — exactly on a logistic curve, so the IRLS propensity
/// fit is exact. The outcome `y = τ·T + 20·z²` is *quadratic* in `z`, so
/// the linear per-arm outcome regressions are misspecified and the
/// outcome-regression estimator is biased.
fn quadratic_outcome_frame() -> (DataFrame, Mask) {
    let mut z = Vec::new();
    let mut t = Vec::new();
    let mut y = Vec::new();
    // (z value, rows, treated rows): empirical rates exactly 0.5/0.75/0.9.
    for &(zv, n_z, n_t) in &[(-1.0, 400usize, 200usize), (0.0, 400, 300), (1.0, 400, 360)] {
        for i in 0..n_z {
            let ti = i < n_t;
            z.push(zv);
            t.push(ti);
            y.push(if ti { TAU } else { 0.0 } + 20.0 * zv * zv);
        }
    }
    let treated = Mask::from_bools(&t);
    let df = DataFrame::builder()
        .float("z", z)
        .float("y", y)
        .build()
        .unwrap();
    (df, treated)
}

/// Fixture 2 — **propensity model misspecified, outcome model correct.**
///
/// Treatment rates (0.9, 0.1, 0.6) over `z ∈ {−1, 0, 1}` are non-monotone,
/// so no logistic-in-`z` model can represent them — the propensity fit is
/// misspecified and plain IPW is biased. The outcome `y = τ·T + 50·z` is
/// exactly linear, so the per-arm outcome regressions are exact (and the
/// steep slope amplifies any covariate imbalance the wrong weights leave).
fn nonlogistic_propensity_frame() -> (DataFrame, Mask) {
    let mut z = Vec::new();
    let mut t = Vec::new();
    let mut y = Vec::new();
    for &(zv, n_z, n_t) in &[(-1.0, 100usize, 90usize), (0.0, 100, 10), (1.0, 100, 60)] {
        for i in 0..n_z {
            let ti = i < n_t;
            z.push(zv);
            t.push(ti);
            y.push(if ti { TAU } else { 0.0 } + 50.0 * zv);
        }
    }
    let treated = Mask::from_bools(&t);
    let df = DataFrame::builder()
        .float("z", z)
        .float("y", y)
        .build()
        .unwrap();
    (df, treated)
}

fn cate_of(kind: EstimatorKind, df: &DataFrame, treated: &Mask) -> f64 {
    let all = Mask::ones(df.n_rows());
    estimate_cate(kind, df, &all, treated, "y", &["z".into()])
        .unwrap()
        .cate
}

#[test]
fn aipw_survives_misspecified_outcome_model() {
    let (df, treated) = quadratic_outcome_frame();
    let aipw = cate_of(EstimatorKind::Aipw, &df, &treated);
    assert!(
        (aipw - TAU).abs() < 1e-3,
        "AIPW must stay consistent when only the propensity model is correct: {aipw}"
    );
    // The test has teeth: the outcome-regression estimator alone is biased
    // by the omitted quadratic term.
    let linear = cate_of(EstimatorKind::Linear, &df, &treated);
    assert!(
        (linear - TAU).abs() > 0.2,
        "fixture must actually misspecify the outcome model (linear = {linear})"
    );
}

#[test]
fn aipw_survives_misspecified_propensity_model() {
    let (df, treated) = nonlogistic_propensity_frame();
    let aipw = cate_of(EstimatorKind::Aipw, &df, &treated);
    // The outcome regressions are exact here, so the residual terms of the
    // doubly-robust score vanish identically — machine precision.
    assert!(
        (aipw - TAU).abs() < 1e-9,
        "AIPW must stay consistent when only the outcome model is correct: {aipw}"
    );
    let ipw = cate_of(EstimatorKind::Ipw, &df, &treated);
    assert!(
        (ipw - TAU).abs() > 0.5,
        "fixture must actually misspecify the propensity model (ipw = {ipw})"
    );
}

#[test]
fn aipw_matches_truth_when_both_models_correct() {
    // Linear outcome and logistic propensity: every estimator's happy path.
    let mut z = Vec::new();
    let mut t = Vec::new();
    let mut y = Vec::new();
    for &(zv, n_z, n_t) in &[(-1.0, 200usize, 50usize), (1.0, 200, 150)] {
        for i in 0..n_z {
            let ti = i < n_t;
            z.push(zv);
            t.push(ti);
            y.push(if ti { TAU } else { 0.0 } + 7.0 * zv);
        }
    }
    let treated = Mask::from_bools(&t);
    let df = DataFrame::builder()
        .float("z", z)
        .float("y", y)
        .build()
        .unwrap();
    let aipw = cate_of(EstimatorKind::Aipw, &df, &treated);
    assert!((aipw - TAU).abs() < 1e-6, "aipw = {aipw}");
}

#[test]
fn matching_agrees_with_stratification_on_exact_matches() {
    // Two categorical covariates, every joint stratum holding both arms:
    // tie-inclusive k-NN matching at distance zero reproduces the exact
    // stratification estimate.
    let mut a = Vec::new();
    let mut b = Vec::new();
    let mut t = Vec::new();
    let mut y = Vec::new();
    for (si, (av, bv)) in [("u", "x"), ("u", "w"), ("v", "x"), ("v", "w")]
        .into_iter()
        .enumerate()
    {
        for i in 0..24 {
            let ti = i % 3 == 0 || (si % 2 == 0 && i % 2 == 0);
            a.push(av);
            b.push(bv);
            t.push(ti);
            // Stratum-specific baseline and effect.
            y.push(si as f64 * 30.0 + if ti { 4.0 + si as f64 } else { 0.0 });
        }
    }
    let treated = Mask::from_bools(&t);
    let df = DataFrame::builder()
        .cat("a", &a)
        .cat("b", &b)
        .float("y", y)
        .build()
        .unwrap();
    let all = Mask::ones(df.n_rows());
    let adjustment = vec!["a".to_string(), "b".to_string()];
    let m = estimate_cate(
        EstimatorKind::Matching,
        &df,
        &all,
        &treated,
        "y",
        &adjustment,
    )
    .unwrap();
    let s = estimate_cate(
        EstimatorKind::Stratified,
        &df,
        &all,
        &treated,
        "y",
        &adjustment,
    )
    .unwrap();
    assert!(
        (m.cate - s.cate).abs() < 1e-9,
        "matching {} vs stratified {}",
        m.cate,
        s.cate
    );
    assert_eq!(m.n_treated, s.n_treated);
    assert_eq!(m.n_control, s.n_control);
}

#[test]
fn new_estimators_produce_german_credit_rulesets() {
    // Acceptance: `session.solve()` with AIPW and matching yields rulesets
    // on the German-credit example, and the per-estimator cache stats are
    // keyed by estimator name.
    let ds = german::generate(german::GERMAN_DEFAULT_ROWS, 42);
    let session = FairCap::builder()
        .data(ds.df)
        .dag(ds.dag)
        .outcome(ds.outcome)
        .immutable(ds.immutable)
        .mutable(ds.mutable)
        .protected(ds.protected)
        .build()
        .unwrap();
    // Single-predicate patterns keep the candidate lattice small enough for
    // a debug-build test; the release-mode `ablation_estimators` bin runs
    // the full-size sweep.
    let mut config = faircap::core::FairCapConfig {
        apriori_threshold: 0.2,
        max_group_len: 1,
        max_intervention_len: 1,
        ..Default::default()
    };
    for kind in [EstimatorKind::Aipw, EstimatorKind::Matching] {
        config.estimator = kind;
        let report = session.solve(&SolveRequest::from(config.clone())).unwrap();
        assert!(
            !report.rules.is_empty(),
            "{} produced an empty ruleset",
            kind.name()
        );
        let stats = session.engine().cache_stats_for(kind.name());
        assert!(stats.misses > 0, "{} did no estimation work?", kind.name());
    }
    let per = session.cache_stats_by_estimator();
    assert!(per.contains_key("aipw") && per.contains_key("matching"));
}
