//! Property-based tests for the statistics substrate: distribution
//! functions must behave like distribution functions.

use faircap::table::stats::{
    beta_inc, chi2_sf, gamma_p, gamma_q, ln_gamma, normal_cdf, t_sf_two_sided, welch_t_test,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn gamma_p_q_sum_to_one(a in 0.1f64..50.0, x in 0.0f64..100.0) {
        let p = gamma_p(a, x);
        let q = gamma_q(a, x);
        prop_assert!((p + q - 1.0).abs() < 1e-9, "a={a} x={x}: {p} + {q}");
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
    }

    #[test]
    fn gamma_p_monotone_in_x(a in 0.1f64..30.0, x1 in 0.0f64..50.0, dx in 0.0f64..10.0) {
        prop_assert!(gamma_p(a, x1 + dx) >= gamma_p(a, x1) - 1e-12);
    }

    #[test]
    fn chi2_sf_monotone_decreasing(k in 0.5f64..40.0, x1 in 0.0f64..60.0, dx in 0.0f64..20.0) {
        prop_assert!(chi2_sf(x1 + dx, k) <= chi2_sf(x1, k) + 1e-12);
        prop_assert!((0.0..=1.0).contains(&chi2_sf(x1, k)));
    }

    #[test]
    fn normal_cdf_is_a_cdf(x in -8.0f64..8.0, dx in 0.0f64..4.0) {
        let a = normal_cdf(x);
        let b = normal_cdf(x + dx);
        prop_assert!((0.0..=1.0).contains(&a));
        prop_assert!(b >= a - 1e-12);
        // symmetry
        prop_assert!((normal_cdf(-x) - (1.0 - a)).abs() < 1e-9);
    }

    #[test]
    fn beta_inc_is_a_cdf(a in 0.2f64..20.0, b in 0.2f64..20.0, x in 0.0f64..1.0, dx in 0.0f64..0.5) {
        let v = beta_inc(a, b, x);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
        let x2 = (x + dx).min(1.0);
        prop_assert!(beta_inc(a, b, x2) >= v - 1e-9);
        // symmetry relation I_x(a,b) = 1 − I_{1−x}(b,a)
        prop_assert!((v - (1.0 - beta_inc(b, a, 1.0 - x))).abs() < 1e-8);
    }

    #[test]
    fn t_p_value_decreases_with_statistic(df in 1.0f64..200.0, t in 0.0f64..8.0, dt in 0.0f64..4.0) {
        let p1 = t_sf_two_sided(t, df);
        let p2 = t_sf_two_sided(t + dt, df);
        prop_assert!(p2 <= p1 + 1e-12);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p1));
    }

    #[test]
    fn welch_t_sign_follows_mean_difference(
        m1 in -50.0f64..50.0,
        m2 in -50.0f64..50.0,
        v in 0.5f64..20.0,
        n in 5usize..200,
    ) {
        if let Some(r) = welch_t_test(m1, v, n, m2, v, n) {
            if m1 > m2 {
                prop_assert!(r.statistic > 0.0);
            } else if m1 < m2 {
                prop_assert!(r.statistic < 0.0);
            }
            prop_assert!((0.0..=1.0 + 1e-12).contains(&r.p_value));
            prop_assert!(r.df > 0.0);
        }
    }

    #[test]
    fn ln_gamma_recurrence(x in 0.5f64..50.0) {
        // Γ(x+1) = x·Γ(x)  ⇒  lnΓ(x+1) = ln x + lnΓ(x)
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()), "x={x}");
    }
}
