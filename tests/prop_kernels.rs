//! Property tests pinning the hot-path kernel contract: every blocked,
//! fused, or parallel code path in `faircap::causal::estimate::kernel` and
//! the KD-tree matching engine must be **bit-identical** (`f64::to_bits`,
//! not tolerance) to the naive reference implementations preserved in
//! `faircap::causal::estimate::reference`. Bit-identity is what lets the
//! engine pick block sizes, worker counts, and search strategies purely on
//! cost grounds — the answer never depends on the path taken.

use faircap::causal::estimate::{kernel, matching, reference};
use faircap::causal::{Estimate, HotStats};
use faircap::table::{DataFrame, Mask};
use proptest::prelude::*;

/// Worker counts exercised against the serial (`workers = 1`) reference.
const WORKER_GRID: [usize; 3] = [2, 3, 8];

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

fn matrix_bits(m: &faircap::causal::linalg::Matrix) -> Vec<u64> {
    let k = m.rows();
    (0..k)
        .flat_map(|r| (0..k).map(move |c| (r, c)))
        .map(|(r, c)| m.get(r, c).to_bits())
        .collect()
}

fn estimate_bits(e: &Estimate) -> [u64; 4] {
    [
        e.cate.to_bits(),
        e.std_err.to_bits(),
        e.t_stat.to_bits(),
        e.p_value.to_bits(),
    ]
}

/// `k` random finite columns of `n` rows each.
fn columns_strategy(n: usize, k: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-10.0f64..10.0, n), k)
}

/// A random mixed-type frame plus group/treated masks sized so the
/// matching estimator always has both arms: the first ten rows alternate
/// treated/control five-and-five and sweep all three category levels.
fn matching_frame(
    z_codes: &[u8],
    noise: &[f64],
    y: &[f64],
    treated_bits: &[bool],
) -> (DataFrame, Mask, Mask) {
    let n = z_codes.len();
    let levels = ["a", "b", "c"];
    let z: Vec<&str> = (0..n)
        .map(|i| {
            if i < 10 {
                levels[i % 3]
            } else {
                levels[z_codes[i] as usize % 3]
            }
        })
        .collect();
    let t: Vec<bool> = (0..n)
        .map(|i| if i < 10 { i % 2 == 0 } else { treated_bits[i] })
        .collect();
    let df = DataFrame::builder()
        .cat("z", &z)
        .float("noise", noise.to_vec())
        .float("y", y.to_vec())
        .build()
        .unwrap();
    let group = Mask::from_bools(&vec![true; n]);
    let treated = Mask::from_bools(&t);
    (df, group, treated)
}

proptest! {
    /// Fused columnar design assembly == naive row-major assembly, for
    /// both the OLS layout (treatment column) and the covariate-only
    /// layout, serial and parallel.
    #[test]
    fn design_assembly_matches_naive(
        z_codes in prop::collection::vec(0u8..3, 40..160),
        noise in prop::collection::vec(-5.0f64..5.0, 160),
        y in prop::collection::vec(-5.0f64..5.0, 160),
        treated_bits in prop::collection::vec(any::<bool>(), 160),
        group_bits in prop::collection::vec(any::<bool>(), 160),
    ) {
        let n = z_codes.len();
        let (df, _, treated) = matching_frame(&z_codes, &noise[..n], &y[..n], &treated_bits[..n]);
        // A random, non-empty subgroup (row 0 always in).
        let mut gb = group_bits[..n].to_vec();
        gb[0] = true;
        let group = Mask::from_bools(&gb);
        let adjustment = vec!["z".to_owned(), "noise".to_owned()];

        for treated_opt in [Some(&treated), None] {
            let naive = reference::design_columns_naive(&df, &adjustment, &group, treated_opt)
                .unwrap();
            for workers in [1, 2, 8] {
                let fused = kernel::build_columns(
                    &df, &adjustment, &group, treated_opt, workers, &mut 0,
                )
                .unwrap();
                prop_assert_eq!(fused.k(), naive.len());
                for (fc, nc) in fused.cols().iter().zip(&naive) {
                    prop_assert_eq!(bits(fc), bits(nc));
                }
            }
        }
    }

    /// Blocked X'X and X'y == naive entry-at-a-time loops, bitwise, at
    /// every worker count.
    #[test]
    fn reductions_match_naive(
        cols in (20usize..200, 1usize..6).prop_flat_map(|(n, k)| columns_strategy(n, k)),
        y_seed in prop::collection::vec(-10.0f64..10.0, 200),
    ) {
        let n = cols[0].len();
        let y = &y_seed[..n];
        let naive_gram = reference::gram_naive(&cols);
        let naive_xty = reference::xty_naive(&cols, y);
        for workers in std::iter::once(1).chain(WORKER_GRID) {
            let gram = kernel::gram_columns(&cols, workers, &mut 0);
            let xty = kernel::xty_columns(&cols, y, workers, &mut 0);
            prop_assert_eq!(matrix_bits(&gram), matrix_bits(&naive_gram));
            prop_assert_eq!(bits(&xty), bits(&naive_xty));
        }
    }

    /// The fused IRLS reduction (weighted gram + score) and the per-arm
    /// masked gram == their naive counterparts, bitwise, at every worker
    /// count.
    #[test]
    fn irls_and_arm_kernels_match_naive(
        cols in (20usize..200, 1usize..5).prop_flat_map(|(n, k)| columns_strategy(n, k)),
        w_seed in prop::collection::vec(0.0f64..4.0, 200),
        r_seed in prop::collection::vec(-2.0f64..2.0, 200),
        arm_bits in prop::collection::vec(any::<bool>(), 200),
    ) {
        let n = cols[0].len();
        let (w, r) = (&w_seed[..n], &r_seed[..n]);
        let arm: Vec<f64> = arm_bits[..n].iter().map(|&b| b as u8 as f64).collect();
        let (naive_wg, naive_score) = reference::weighted_gram_score_naive(&cols, w, r);
        let (naive_ag, naive_rhs) = reference::arm_gram_xty_naive(&cols, r, &arm);
        for workers in std::iter::once(1).chain(WORKER_GRID) {
            let (wg, score) = kernel::weighted_gram_score(&cols, w, r, workers, &mut 0);
            let (ag, rhs) = kernel::arm_gram_xty(&cols, r, &arm, workers, &mut 0);
            prop_assert_eq!(matrix_bits(&wg), matrix_bits(&naive_wg));
            prop_assert_eq!(bits(&score), bits(&naive_score));
            prop_assert_eq!(matrix_bits(&ag), matrix_bits(&naive_ag));
            prop_assert_eq!(bits(&rhs), bits(&naive_rhs));
        }
    }

    /// Column-streaming X·β == naive per-row dot products, bitwise.
    #[test]
    fn mat_vec_matches_naive(
        cols in (10usize..150, 1usize..6).prop_flat_map(|(n, k)| columns_strategy(n, k)),
        beta_seed in prop::collection::vec(-3.0f64..3.0, 6),
    ) {
        let beta = &beta_seed[..cols.len()];
        prop_assert_eq!(
            bits(&kernel::mat_vec_columns(&cols, beta)),
            bits(&reference::mat_vec_naive(&cols, beta))
        );
    }

    /// KD-tree matching == brute-force matching, bitwise, on tie-heavy
    /// categorical designs (where tie-inclusive cutoffs do real work),
    /// across worker counts and with a prebuilt, reused index.
    #[test]
    fn tree_matching_matches_brute(
        z_codes in prop::collection::vec(0u8..3, 40..160),
        noise in prop::collection::vec(-1.0f64..1.0, 160),
        y in prop::collection::vec(-5.0f64..5.0, 160),
        treated_bits in prop::collection::vec(any::<bool>(), 160),
    ) {
        let n = z_codes.len();
        let (df, group, treated) = matching_frame(&z_codes, &noise[..n], &y[..n], &treated_bits[..n]);
        let adjustment = vec!["z".to_owned(), "noise".to_owned()];

        let brute = matching::estimate_with(
            &df, &group, &treated, "y", &adjustment,
            &matching::MatchParams {
                index: None,
                strategy: matching::MatchStrategy::Brute,
                workers: 1,
            },
            &mut HotStats::default(),
        )
        .unwrap();

        let index = matching::MatchIndex::build(
            &df, &group, "y", &adjustment, 1, &mut HotStats::default(),
        )
        .unwrap();
        for workers in [1, 2, 8] {
            for index_opt in [None, Some(&index)] {
                let tree = matching::estimate_with(
                    &df, &group, &treated, "y", &adjustment,
                    &matching::MatchParams {
                        index: index_opt,
                        strategy: matching::MatchStrategy::Tree,
                        workers,
                    },
                    &mut HotStats::default(),
                )
                .unwrap();
                prop_assert_eq!(estimate_bits(&tree), estimate_bits(&brute));
                prop_assert_eq!(tree.n_treated, brute.n_treated);
                prop_assert_eq!(tree.n_control, brute.n_control);
            }
        }
    }
}
