//! End-to-end integration tests: the full FairCap pipeline on the synthetic
//! Stack Overflow and German Credit stand-ins, checking the paper's
//! qualitative claims (Table 4's shape) on small samples.

use faircap::core::{
    CoverageConstraint, FairCapConfig, FairnessConstraint, FairnessScope, SolutionReport,
};
use faircap::data::{german, so, Dataset};
use faircap::{FairCap, PrescriptionSession, SolveRequest};

fn session(ds: &Dataset) -> PrescriptionSession {
    FairCap::builder()
        .data(ds.df.clone())
        .dag(ds.dag.clone())
        .outcome(&ds.outcome)
        .immutable(ds.immutable.iter().cloned())
        .mutable(ds.mutable.iter().cloned())
        .protected(ds.protected.clone())
        .build()
        .expect("generated dataset is a valid problem instance")
}

fn solve(s: &PrescriptionSession, cfg: FairCapConfig) -> SolutionReport {
    s.solve(&SolveRequest::from(cfg)).expect("config is valid")
}

fn so_small() -> Dataset {
    so::generate(6_000, 42)
}

#[test]
fn unconstrained_run_finds_high_utility_rules() {
    let ds = so_small();
    let report = solve(&session(&ds), FairCapConfig::default());
    assert!(!report.rules.is_empty());
    assert!(report.constraints_met);
    // Salary-scale utilities, and every rule is statistically significant.
    assert!(report.summary.expected > 5_000.0);
    for r in &report.rules {
        assert!(r.utility.overall > 0.0);
        assert!(
            r.utility.p_value <= 0.05,
            "rule {} p={}",
            r,
            r.utility.p_value
        );
        // grouping over immutables, intervention over mutables
        for attr in r.grouping.attributes() {
            assert!(
                ds.immutable.iter().any(|a| a == attr),
                "{attr} not immutable"
            );
        }
        for attr in r.intervention.attributes() {
            assert!(ds.mutable.iter().any(|a| a == attr), "{attr} not mutable");
        }
    }
}

#[test]
fn group_sp_satisfied_and_costs_utility() {
    let ds = so_small();
    let s = session(&ds);
    let unconstrained = solve(&s, FairCapConfig::default());
    let cfg = FairCapConfig {
        fairness: FairnessConstraint::StatisticalParity {
            scope: FairnessScope::Group,
            epsilon: 10_000.0,
        },
        ..FairCapConfig::default()
    };
    let fair = solve(&s, cfg);
    assert!(fair.constraints_met);
    assert!(fair.summary.unfairness.abs() <= 10_000.0);
    assert!(fair.summary.expected <= unconstrained.summary.expected + 1e-6);
    assert!(fair.summary.unfairness < unconstrained.summary.unfairness);
}

#[test]
fn individual_sp_bounds_every_rule() {
    let ds = so_small();
    let cfg = FairCapConfig {
        fairness: FairnessConstraint::StatisticalParity {
            scope: FairnessScope::Individual,
            epsilon: 10_000.0,
        },
        ..FairCapConfig::default()
    };
    let report = solve(&session(&ds), cfg);
    assert!(report.constraints_met);
    for r in &report.rules {
        assert!(
            r.utility.gap() <= 10_000.0,
            "rule {} gap {}",
            r,
            r.utility.gap()
        );
    }
}

#[test]
fn rule_coverage_filters_small_groups() {
    let ds = so_small();
    let cfg = FairCapConfig {
        coverage: CoverageConstraint::Rule {
            theta: 0.5,
            theta_protected: 0.5,
        },
        ..FairCapConfig::default()
    };
    let s = session(&ds);
    let report = solve(&s, cfg);
    assert!(report.constraints_met);
    let n = ds.df.n_rows() as f64;
    let np = ds.protected_mask().count() as f64;
    for r in &report.rules {
        assert!(r.coverage_count() as f64 >= 0.5 * n);
        assert!(r.coverage_protected_count() as f64 >= 0.5 * np);
    }
    // Rule coverage restricts the candidate pool (paper: fewer rules).
    let unconstrained = solve(&s, FairCapConfig::default());
    assert!(report.size() <= unconstrained.size());
}

#[test]
fn group_coverage_reaches_thresholds() {
    let ds = so_small();
    let cfg = FairCapConfig {
        coverage: CoverageConstraint::Group {
            theta: 0.8,
            theta_protected: 0.8,
        },
        ..FairCapConfig::default()
    };
    let report = solve(&session(&ds), cfg);
    assert!(report.constraints_met);
    assert!(report.summary.coverage >= 0.8);
    assert!(report.summary.coverage_protected >= 0.8);
}

#[test]
fn german_bgl_group_holds_protected_floor() {
    let ds = german::generate(1_000, 42);
    let cfg = FairCapConfig {
        fairness: FairnessConstraint::BoundedGroupLoss {
            scope: FairnessScope::Group,
            tau: 0.1,
        },
        coverage: CoverageConstraint::Group {
            theta: 0.3,
            theta_protected: 0.3,
        },
        ..FairCapConfig::default()
    };
    let report = solve(&session(&ds), cfg);
    assert!(report.constraints_met, "{report}");
    assert!(report.summary.expected_protected >= 0.1);
    assert!(report.summary.coverage >= 0.3);
}

#[test]
fn german_bgl_individual_bounds_every_rule() {
    let ds = german::generate(1_000, 42);
    let cfg = FairCapConfig {
        fairness: FairnessConstraint::BoundedGroupLoss {
            scope: FairnessScope::Individual,
            tau: 0.1,
        },
        ..FairCapConfig::default()
    };
    let report = solve(&session(&ds), cfg);
    assert!(report.constraints_met);
    for r in &report.rules {
        assert!(
            r.utility.protected >= 0.1,
            "rule {} protected utility {} < τ",
            r,
            r.utility.protected
        );
    }
}

#[test]
fn german_outcome_scale_is_probability() {
    let ds = german::generate(1_000, 42);
    let report = solve(&session(&ds), FairCapConfig::default());
    assert!(!report.rules.is_empty());
    assert!(
        report.summary.expected > 0.05 && report.summary.expected < 1.0,
        "expected utility {} should be probability-scale",
        report.summary.expected
    );
}

#[test]
fn fairness_threshold_sweep_is_monotone_in_utility() {
    // Table 5's shape: looser ε admits higher-utility (less fair) solutions.
    let ds = so_small();
    let s = session(&ds);
    let mut utilities = Vec::new();
    for epsilon in [2_500.0, 10_000.0, 40_000.0] {
        let before = s.cache_stats().misses;
        let cfg = FairCapConfig {
            fairness: FairnessConstraint::StatisticalParity {
                scope: FairnessScope::Group,
                epsilon,
            },
            ..FairCapConfig::default()
        };
        let report = solve(&s, cfg);
        assert!(report.summary.unfairness.abs() <= epsilon, "ε={epsilon}");
        if before > 0 {
            // ε-sweeps on one session are pure cache reads.
            assert_eq!(s.cache_stats().misses, before, "ε={epsilon} re-estimated");
        }
        utilities.push(report.summary.expected);
    }
    assert!(
        utilities[0] <= utilities[2] + 1e-6,
        "tightest ε should not beat loosest: {utilities:?}"
    );
}

#[test]
fn report_rows_render() {
    let ds = so::generate(3_000, 11);
    let report = solve(&session(&ds), FairCapConfig::default());
    let row = report.table_row();
    assert!(row.contains('%'));
    assert!(!report.rule_cards().is_empty());
    assert!(report.timings.total().as_nanos() > 0);
}
