//! Property tests for the staged solve executor and the sharded LRU cache:
//!
//! * work-stealing parallel Step 2 is **deterministic** — for random data
//!   seeds and worker counts, the parallel ruleset is identical to
//!   `parallel: false`;
//! * `ShardedLruCache` never exceeds its bound, evicts LRU-first (checked
//!   against a reference model on a single shard), and keeps its counters
//!   consistent across shards.

use faircap::causal::scm::{bernoulli, normal, Scm};
use faircap::core::FairCapConfig;
use faircap::table::{ShardedLruCache, Value};
use faircap::{FairCap, PrescriptionSession, SolveRequest};
use proptest::prelude::*;

/// A small planted-effect instance parameterized by RNG seed.
fn session_for_seed(seed: u64) -> PrescriptionSession {
    let scm = Scm::new()
        .categorical("segment", &[("a", 0.5), ("b", 0.5)])
        .unwrap()
        .categorical("grp", &[("p", 0.3), ("np", 0.7)])
        .unwrap()
        .node(
            "treat",
            &[],
            Box::new(|_, rng| Value::Str(if bernoulli(rng, 0.4) { "yes" } else { "no" }.into())),
        )
        .unwrap()
        .node(
            "boost",
            &[],
            Box::new(|_, rng| Value::Bool(bernoulli(rng, 0.5))),
        )
        .unwrap()
        .node(
            "outcome",
            &["segment", "grp", "treat", "boost"],
            Box::new(|row, rng| {
                let mut v = 50.0;
                if row.str("treat") == "yes" {
                    v += if row.str("grp") == "p" { 6.0 } else { 18.0 };
                }
                if row.flag("boost") {
                    v += 9.0;
                }
                Value::Float(v + normal(rng, 0.0, 4.0))
            }),
        )
        .unwrap();
    let df = scm.sample(600, seed).unwrap();
    let dag = scm.dag();
    FairCap::builder()
        .data(df)
        .dag(dag)
        .outcome("outcome")
        .immutable(["segment", "grp"])
        .mutable(["treat", "boost"])
        .protected(faircap::table::Pattern::of_eq(&[("grp", Value::from("p"))]))
        .build()
        .unwrap()
}

proptest! {
    #[test]
    fn parallel_solve_is_identical_to_serial(seed in 0u64..10_000, workers in 1usize..6) {
        let session = session_for_seed(seed);
        let serial = session
            .solve(&SolveRequest::from(FairCapConfig {
                parallel: false,
                ..FairCapConfig::default()
            }))
            .unwrap();
        let parallel = session
            .solve(&SolveRequest::default().workers(workers))
            .unwrap();
        let a: Vec<String> = serial.rules.iter().map(|r| r.to_string()).collect();
        let b: Vec<String> = parallel.rules.iter().map(|r| r.to_string()).collect();
        prop_assert_eq!(a, b, "seed {} workers {}", seed, workers);
        prop_assert_eq!(
            format!("{:?}", serial.summary),
            format!("{:?}", parallel.summary)
        );
    }

    #[test]
    fn cache_never_exceeds_bound_and_counters_balance(
        capacity in 1usize..16,
        n_shards in 1usize..9,
        ops in prop::collection::vec((0u32..24, any::<bool>()), 1..120),
    ) {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(capacity, n_shards);
        let mut gets = 0u64;
        let mut inserts = 0u64;
        let mut replacements = 0u64;
        for (key, is_insert) in ops {
            if is_insert {
                if cache.insert(key, key * 2).replaced {
                    replacements += 1;
                }
                inserts += 1;
            } else {
                if let Some(v) = cache.get(&key) {
                    prop_assert_eq!(v, key * 2, "cache must return what was inserted");
                }
                gets += 1;
            }
            prop_assert!(
                cache.len() <= capacity,
                "len {} exceeds bound {}",
                cache.len(),
                capacity
            );
        }
        let c = cache.counters();
        prop_assert_eq!(c.hits + c.misses, gets, "every get is a hit or a miss");
        prop_assert_eq!(
            c.entries as u64 + c.evictions + replacements,
            inserts,
            "inserts either remain, were evicted, or replaced an entry"
        );
    }

    #[test]
    fn single_shard_cache_matches_reference_lru(
        ops in prop::collection::vec((0u32..12, any::<bool>()), 1..100),
        capacity in 1usize..8,
    ) {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(capacity, 1);
        // Reference model: Vec of keys ordered least→most recently used.
        let mut model: Vec<u32> = Vec::new();
        for (key, is_insert) in ops {
            if is_insert {
                cache.insert(key, key);
                if let Some(pos) = model.iter().position(|&k| k == key) {
                    model.remove(pos);
                }
                model.push(key);
                if model.len() > capacity {
                    model.remove(0); // reference evicts LRU-first
                }
            } else {
                let hit = cache.get(&key);
                let model_hit = model.iter().position(|&k| k == key);
                prop_assert_eq!(
                    hit.is_some(),
                    model_hit.is_some(),
                    "presence diverged from reference LRU on key {}",
                    key
                );
                if let Some(pos) = model_hit {
                    let k = model.remove(pos);
                    model.push(k); // get refreshes recency
                }
            }
            prop_assert_eq!(cache.len(), model.len());
        }
    }
}
