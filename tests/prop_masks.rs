//! Property-based tests for the bitset mask algebra — the row-selection
//! substrate every coverage computation rests on.

use faircap::table::Mask;
use proptest::prelude::*;

/// Strategy: a mask of length `len` given by a boolean vector.
fn mask_strategy(len: usize) -> impl Strategy<Value = Mask> {
    prop::collection::vec(any::<bool>(), len).prop_map(|bits| Mask::from_bools(&bits))
}

proptest! {
    #[test]
    fn and_is_intersection(a in mask_strategy(200), b in mask_strategy(200)) {
        let c = &a & &b;
        for i in 0..200 {
            prop_assert_eq!(c.get(i), a.get(i) && b.get(i));
        }
        prop_assert_eq!(c.count(), a.intersect_count(&b));
    }

    #[test]
    fn or_is_union(a in mask_strategy(200), b in mask_strategy(200)) {
        let c = &a | &b;
        for i in 0..200 {
            prop_assert_eq!(c.get(i), a.get(i) || b.get(i));
        }
        prop_assert_eq!(c.count(), a.union_count(&b));
    }

    #[test]
    fn not_is_complement(a in mask_strategy(193)) {
        let c = !&a;
        prop_assert_eq!(c.count(), 193 - a.count());
        let back = !&c;
        prop_assert_eq!(back, a);
    }

    #[test]
    fn andnot_is_difference(a in mask_strategy(130), b in mask_strategy(130)) {
        let c = a.andnot(&b);
        for i in 0..130 {
            prop_assert_eq!(c.get(i), a.get(i) && !b.get(i));
        }
        // difference + intersection partitions a
        prop_assert_eq!(c.count() + a.intersect_count(&b), a.count());
    }

    #[test]
    fn de_morgan(a in mask_strategy(128), b in mask_strategy(128)) {
        let lhs = !&(&a & &b);
        let rhs = &(!&a) | &(!&b);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn inclusion_exclusion(a in mask_strategy(150), b in mask_strategy(150)) {
        prop_assert_eq!(
            a.union_count(&b) + a.intersect_count(&b),
            a.count() + b.count()
        );
    }

    #[test]
    fn subset_iff_andnot_empty(a in mask_strategy(90), b in mask_strategy(90)) {
        prop_assert_eq!(a.is_subset(&b), a.andnot(&b).none());
        // intersection is always a subset of both operands
        let c = &a & &b;
        prop_assert!(c.is_subset(&a) && c.is_subset(&b));
    }

    #[test]
    fn iter_ones_roundtrip(a in mask_strategy(257)) {
        let idx = a.to_indices();
        prop_assert_eq!(idx.len(), a.count());
        // ascending and within range
        for w in idx.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        let rebuilt = Mask::from_indices(257, &idx);
        prop_assert_eq!(rebuilt, a);
    }

    #[test]
    fn fraction_bounds(a in mask_strategy(64)) {
        let f = a.fraction();
        prop_assert!((0.0..=1.0).contains(&f));
    }

    /// `MaskView::for_each_set_word` decodes to exactly the rows a naive
    /// per-bit `get(i)` loop reports — in ascending order, skipping zero
    /// words without a callback. Length 321 exercises a partial tail word.
    #[test]
    fn view_words_decode_to_the_per_bit_rows(a in mask_strategy(321)) {
        let mut decoded = Vec::new();
        let mut zero_words = 0u32;
        a.view().for_each_set_word(|wi, word| {
            if word == 0 {
                zero_words += 1;
            }
            let mut w = word;
            while w != 0 {
                decoded.push(wi * 64 + w.trailing_zeros() as usize);
                w &= w - 1;
            }
        });
        prop_assert_eq!(zero_words, 0u32);
        let naive: Vec<usize> = (0..321).filter(|&i| a.get(i)).collect();
        prop_assert_eq!(decoded, naive);
    }

    /// The view's word-popcount agrees with the mask's own count and a
    /// naive per-bit tally, across tail-word lengths.
    #[test]
    fn view_count_is_popcount(bits in prop::collection::vec(any::<bool>(), 1..300)) {
        let a = Mask::from_bools(&bits);
        let naive = bits.iter().filter(|&&b| b).count();
        prop_assert_eq!(a.view().count(), naive);
        prop_assert_eq!(a.count(), naive);
    }
}
