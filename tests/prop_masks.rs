//! Property-based tests for the bitset mask algebra — the row-selection
//! substrate every coverage computation rests on.

use faircap::table::Mask;
use proptest::prelude::*;

/// Strategy: a mask of length `len` given by a boolean vector.
fn mask_strategy(len: usize) -> impl Strategy<Value = Mask> {
    prop::collection::vec(any::<bool>(), len).prop_map(|bits| Mask::from_bools(&bits))
}

proptest! {
    #[test]
    fn and_is_intersection(a in mask_strategy(200), b in mask_strategy(200)) {
        let c = &a & &b;
        for i in 0..200 {
            prop_assert_eq!(c.get(i), a.get(i) && b.get(i));
        }
        prop_assert_eq!(c.count(), a.intersect_count(&b));
    }

    #[test]
    fn or_is_union(a in mask_strategy(200), b in mask_strategy(200)) {
        let c = &a | &b;
        for i in 0..200 {
            prop_assert_eq!(c.get(i), a.get(i) || b.get(i));
        }
        prop_assert_eq!(c.count(), a.union_count(&b));
    }

    #[test]
    fn not_is_complement(a in mask_strategy(193)) {
        let c = !&a;
        prop_assert_eq!(c.count(), 193 - a.count());
        let back = !&c;
        prop_assert_eq!(back, a);
    }

    #[test]
    fn andnot_is_difference(a in mask_strategy(130), b in mask_strategy(130)) {
        let c = a.andnot(&b);
        for i in 0..130 {
            prop_assert_eq!(c.get(i), a.get(i) && !b.get(i));
        }
        // difference + intersection partitions a
        prop_assert_eq!(c.count() + a.intersect_count(&b), a.count());
    }

    #[test]
    fn de_morgan(a in mask_strategy(128), b in mask_strategy(128)) {
        let lhs = !&(&a & &b);
        let rhs = &(!&a) | &(!&b);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn inclusion_exclusion(a in mask_strategy(150), b in mask_strategy(150)) {
        prop_assert_eq!(
            a.union_count(&b) + a.intersect_count(&b),
            a.count() + b.count()
        );
    }

    #[test]
    fn subset_iff_andnot_empty(a in mask_strategy(90), b in mask_strategy(90)) {
        prop_assert_eq!(a.is_subset(&b), a.andnot(&b).none());
        // intersection is always a subset of both operands
        let c = &a & &b;
        prop_assert!(c.is_subset(&a) && c.is_subset(&b));
    }

    #[test]
    fn iter_ones_roundtrip(a in mask_strategy(257)) {
        let idx = a.to_indices();
        prop_assert_eq!(idx.len(), a.count());
        // ascending and within range
        for w in idx.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        let rebuilt = Mask::from_indices(257, &idx);
        prop_assert_eq!(rebuilt, a);
    }

    #[test]
    fn fraction_bounds(a in mask_strategy(64)) {
        let f = a.fraction();
        prop_assert!((0.0..=1.0).contains(&f));
    }
}
