//! Property-based tests for the core objective machinery: ruleset expected
//! utilities (Eqs. 5–7), the benefit functions, and the theoretical
//! properties the paper proves (Lemma 4.1's refinement argument, Prop. 9.1's
//! non-negativity/monotonicity, Prop. 9.2's matroid structure).

use faircap::core::{
    benefit, ruleset_utility, FairnessConstraint, FairnessScope, Rule, RuleUtility,
};
use faircap::table::{Mask, Pattern, Value};
use proptest::prelude::*;

const N_ROWS: usize = 60;

fn rule_strategy() -> impl Strategy<Value = Rule> {
    (
        prop::collection::vec(any::<bool>(), N_ROWS),
        0.0f64..100.0,
        0.0f64..100.0,
        0.0f64..100.0,
        0u32..1000,
    )
        .prop_map(|(cov, overall, prot, np, tag)| {
            let coverage = Mask::from_bools(&cov);
            // protected rows are 0..20 by convention here
            let protected = Mask::from_indices(N_ROWS, &(0..20).collect::<Vec<_>>());
            Rule {
                grouping: Pattern::of_eq(&[("tag", Value::Int(tag as i64))]),
                intervention: Pattern::empty(),
                coverage_protected: &coverage & &protected,
                coverage,
                utility: RuleUtility {
                    overall,
                    protected: prot,
                    non_protected: np,
                    p_value: 0.01,
                },
                benefit: 0.0,
            }
        })
}

fn protected() -> Mask {
    Mask::from_indices(N_ROWS, &(0..20).collect::<Vec<_>>())
}

proptest! {
    /// Prop. 9.1 flavor: Eq. 5 is non-negative and monotone — adding a rule
    /// never decreases ExpUtility or coverage.
    #[test]
    fn expected_utility_nonnegative_and_monotone(
        rules in prop::collection::vec(rule_strategy(), 1..8),
    ) {
        let prot = protected();
        for k in 1..=rules.len() {
            let head: Vec<&Rule> = rules[..k - 1].iter().collect();
            let with: Vec<&Rule> = rules[..k].iter().collect();
            let u_head = ruleset_utility(&head, N_ROWS, &prot);
            let u_with = ruleset_utility(&with, N_ROWS, &prot);
            prop_assert!(u_with.expected >= 0.0);
            prop_assert!(u_with.expected >= u_head.expected - 1e-9,
                "Eq. 5 must be monotone: {} then {}", u_head.expected, u_with.expected);
            prop_assert!(u_with.coverage >= u_head.coverage - 1e-12);
            prop_assert!(u_with.coverage_protected >= u_head.coverage_protected - 1e-12);
        }
    }

    /// Eq. 5 is submodular in the added rule: the marginal gain of a rule
    /// shrinks as the base set grows (diminishing returns).
    #[test]
    fn expected_utility_submodular(
        base in prop::collection::vec(rule_strategy(), 0..5),
        extra in rule_strategy(),
        addition in rule_strategy(),
    ) {
        let prot = protected();
        // S ⊆ T with T = S ∪ {extra}; marginal of `addition` shrinks.
        let s: Vec<&Rule> = base.iter().collect();
        let mut t = s.clone();
        t.push(&extra);
        let mut s_plus = s.clone();
        s_plus.push(&addition);
        let mut t_plus = t.clone();
        t_plus.push(&addition);
        let gain_s = ruleset_utility(&s_plus, N_ROWS, &prot).expected
            - ruleset_utility(&s, N_ROWS, &prot).expected;
        let gain_t = ruleset_utility(&t_plus, N_ROWS, &prot).expected
            - ruleset_utility(&t, N_ROWS, &prot).expected;
        prop_assert!(gain_t <= gain_s + 1e-9,
            "submodularity violated: gain under superset {gain_t} > {gain_s}");
    }

    /// Eq. 6 uses worst-case (min) semantics: adding rules can only lower
    /// the per-individual protected utility on already-covered rows.
    #[test]
    fn protected_worst_case_min(
        rules in prop::collection::vec(rule_strategy(), 1..6),
    ) {
        let prot = protected();
        let all: Vec<&Rule> = rules.iter().collect();
        let summary = ruleset_utility(&all, N_ROWS, &prot);
        // the protected expectation can never exceed the best single-rule
        // protected utility among rules that actually cover protected rows
        let max_prot = rules
            .iter()
            .filter(|r| r.coverage_protected.any())
            .map(|r| r.utility.protected)
            .fold(f64::NEG_INFINITY, f64::max);
        if max_prot.is_finite() {
            prop_assert!(summary.expected_protected <= max_prot + 1e-9);
        } else {
            prop_assert_eq!(summary.expected_protected, 0.0);
        }
    }

    /// SP benefit never exceeds the plain utility, equals it when the
    /// protected group gains at least as much, and is monotone in the gap.
    #[test]
    fn sp_benefit_properties(
        overall in 0.0f64..1000.0,
        prot in 0.0f64..1000.0,
        np in 0.0f64..1000.0,
        widen in 0.0f64..100.0,
    ) {
        let f = FairnessConstraint::StatisticalParity {
            scope: FairnessScope::Group,
            epsilon: 1.0,
        };
        let u = RuleUtility { overall, protected: prot, non_protected: np, p_value: 0.0 };
        let b = benefit(&u, &f);
        prop_assert!(b <= overall + 1e-9);
        if prot >= np {
            prop_assert!((b - overall).abs() < 1e-12);
        } else {
            // widening the gap cannot increase the benefit
            let wider = RuleUtility {
                overall,
                protected: prot,
                non_protected: np + widen,
                p_value: 0.0,
            };
            prop_assert!(benefit(&wider, &f) <= b + 1e-12);
        }
    }

    /// BGL benefit: monotone in protected utility, capped by the plain
    /// utility.
    #[test]
    fn bgl_benefit_properties(
        overall in 0.0f64..1000.0,
        prot in 0.0f64..200.0,
        raise in 0.0f64..50.0,
        tau in 0.0f64..100.0,
    ) {
        let f = FairnessConstraint::BoundedGroupLoss {
            scope: FairnessScope::Group,
            tau,
        };
        let low = RuleUtility { overall, protected: prot, non_protected: 0.0, p_value: 0.0 };
        let high = RuleUtility { overall, protected: prot + raise, non_protected: 0.0, p_value: 0.0 };
        prop_assert!(benefit(&low, &f) <= benefit(&high, &f) + 1e-12);
        prop_assert!(benefit(&low, &f) <= overall + 1e-9);
    }

    /// Prop. 9.2 (matroid / hereditary): individual-scope constraints are
    /// per-rule, so any subset of a valid set is valid.
    #[test]
    fn individual_constraints_hereditary(
        rules in prop::collection::vec(rule_strategy(), 1..6),
        epsilon in 0.0f64..200.0,
        subset_bits in prop::collection::vec(any::<bool>(), 6),
    ) {
        use faircap::core::constraints::rule_satisfies_fairness;
        let f = FairnessConstraint::StatisticalParity {
            scope: FairnessScope::Individual,
            epsilon,
        };
        let valid: Vec<&Rule> = rules
            .iter()
            .filter(|r| rule_satisfies_fairness(r, &f))
            .collect();
        // every sub-selection of the valid set remains valid
        let subset: Vec<&&Rule> = valid
            .iter()
            .zip(subset_bits.iter().cycle())
            .filter(|(_, &keep)| keep)
            .map(|(r, _)| r)
            .collect();
        prop_assert!(subset.iter().all(|r| rule_satisfies_fairness(r, &f)));
    }
}

/// Lemma 4.1: for any rule there is a refinement (here: a singleton
/// sub-coverage) whose utility is at least the rule's — utility is an
/// average, so some covered tuple attains it.
#[test]
fn lemma_4_1_singleton_refinement() {
    // Deterministic instance: per-tuple utilities 1..=10 with average 5.5.
    let per_tuple: Vec<f64> = (1..=10).map(|v| v as f64).collect();
    let avg = per_tuple.iter().sum::<f64>() / per_tuple.len() as f64;
    let best = per_tuple.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    assert!(
        best >= avg,
        "the max per-tuple utility must reach the average (Lemma 4.1)"
    );
    // And the singleton refinement achieves it exactly.
    assert_eq!(best, 10.0);
}
