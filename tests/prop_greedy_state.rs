//! Property test: the greedy phase's incremental Eq. 5–7 accounting must
//! agree exactly with the batch `ruleset_utility` computation on arbitrary
//! rule sets — validated through the public `run` pipeline summary.

use faircap::core::{ruleset_utility, Rule, RuleUtility};
use faircap::table::{Mask, Pattern, Value};
use proptest::prelude::*;

const N: usize = 80;

fn rule_strategy(idx: usize) -> impl Strategy<Value = Rule> {
    (
        prop::collection::vec(any::<bool>(), N),
        0.1f64..50.0,
        0.0f64..50.0,
    )
        .prop_map(move |(cov, overall, prot)| {
            let coverage = Mask::from_bools(&cov);
            let protected = Mask::from_indices(N, &(0..30).collect::<Vec<_>>());
            Rule {
                grouping: Pattern::of_eq(&[("g", Value::Int(idx as i64))]),
                intervention: Pattern::of_eq(&[("t", Value::Int(idx as i64))]),
                coverage_protected: &coverage & &protected,
                coverage,
                utility: RuleUtility {
                    overall,
                    protected: prot,
                    non_protected: overall,
                    p_value: 0.0,
                },
                benefit: overall,
            }
        })
}

fn rules_strategy() -> impl Strategy<Value = Vec<Rule>> {
    (1usize..7).prop_flat_map(|k| (0..k).map(rule_strategy).collect::<Vec<_>>())
}

proptest! {
    /// Greedy's final summary equals the batch recomputation over the rules
    /// it selected — the incremental state cannot drift.
    #[test]
    fn greedy_summary_matches_batch(rules in rules_strategy()) {
        use faircap::core::algorithm::greedy::greedy_select;
        use faircap::core::FairCapConfig;
        let protected = Mask::from_indices(N, &(0..30).collect::<Vec<_>>());
        let cfg = FairCapConfig {
            min_marginal_gain: 0.0,
            ..FairCapConfig::default()
        };
        let outcome = greedy_select(rules, &cfg, N, &protected);
        let refs: Vec<&Rule> = outcome.selected.iter().collect();
        let batch = ruleset_utility(&refs, N, &protected);
        prop_assert!((outcome.summary.expected - batch.expected).abs() < 1e-9);
        prop_assert!(
            (outcome.summary.expected_protected - batch.expected_protected).abs() < 1e-9
        );
        prop_assert!(
            (outcome.summary.expected_non_protected - batch.expected_non_protected).abs()
                < 1e-9
        );
        prop_assert!((outcome.summary.coverage - batch.coverage).abs() < 1e-12);
        prop_assert!(
            (outcome.summary.coverage_protected - batch.coverage_protected).abs() < 1e-12
        );
    }

    /// Greedy never selects a rule twice and never exceeds the cap.
    #[test]
    fn greedy_selects_distinct_rules(rules in rules_strategy()) {
        use faircap::core::algorithm::greedy::greedy_select;
        use faircap::core::FairCapConfig;
        let protected = Mask::from_indices(N, &(0..30).collect::<Vec<_>>());
        let cfg = FairCapConfig {
            max_rules: 4,
            min_marginal_gain: 0.0,
            ..FairCapConfig::default()
        };
        let outcome = greedy_select(rules, &cfg, N, &protected);
        prop_assert!(outcome.selected.len() <= 4);
        let mut keys: Vec<String> = outcome.selected.iter().map(|r| r.to_string()).collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        prop_assert_eq!(keys.len(), before);
    }
}
