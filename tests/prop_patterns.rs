//! Property-based tests for predicates and conjunctive patterns against a
//! brute-force row-by-row oracle.

use faircap::table::{CmpOp, DataFrame, Mask, Pattern, Predicate, Value};
use proptest::prelude::*;

const CATS: [&str; 4] = ["red", "green", "blue", "gray"];

fn frame_strategy() -> impl Strategy<Value = DataFrame> {
    let rows = 1usize..120;
    rows.prop_flat_map(|n| {
        (
            prop::collection::vec(0usize..CATS.len(), n),
            prop::collection::vec(-20i64..20, n),
            prop::collection::vec(any::<bool>(), n),
        )
            .prop_map(|(cat_idx, ints, bools)| {
                let cats: Vec<&str> = cat_idx.iter().map(|&i| CATS[i]).collect();
                DataFrame::builder()
                    .cat("color", &cats)
                    .int("score", ints)
                    .bool("flag", bools)
                    .build()
                    .unwrap()
            })
    })
}

fn predicate_strategy() -> impl Strategy<Value = Predicate> {
    let op = prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ];
    (0usize..3, op, -25i64..25, 0usize..CATS.len()).prop_map(|(col, op, num, cat)| match col {
        0 => Predicate::new("color", op, Value::from(CATS[cat])),
        1 => Predicate::new("score", op, Value::Int(num)),
        _ => Predicate::new("flag", op, Value::Bool(num % 2 == 0)),
    })
}

proptest! {
    #[test]
    fn predicate_mask_matches_row_oracle(
        df in frame_strategy(),
        pred in predicate_strategy(),
    ) {
        let mask = pred.eval(&df).unwrap();
        for row in 0..df.n_rows() {
            prop_assert_eq!(
                mask.get(row),
                pred.matches_row(&df, row).unwrap(),
                "row {} predicate {}", row, pred
            );
        }
    }

    #[test]
    fn pattern_coverage_is_predicate_intersection(
        df in frame_strategy(),
        preds in prop::collection::vec(predicate_strategy(), 0..4),
    ) {
        let pattern = Pattern::new(preds.clone());
        let cov = pattern.coverage(&df).unwrap();
        let mut expect = Mask::ones(df.n_rows());
        for p in pattern.predicates() {
            expect.and_inplace(&p.eval(&df).unwrap());
        }
        prop_assert_eq!(cov, expect);
    }

    #[test]
    fn specialization_shrinks_coverage(
        df in frame_strategy(),
        preds in prop::collection::vec(predicate_strategy(), 1..4),
        extra in predicate_strategy(),
    ) {
        let base = Pattern::new(preds);
        let specialized = base.with(extra);
        let cov_base = base.coverage(&df).unwrap();
        let cov_spec = specialized.coverage(&df).unwrap();
        prop_assert!(cov_spec.is_subset(&cov_base));
        prop_assert!(base.is_subpattern_of(&specialized));
    }

    #[test]
    fn pattern_equality_is_order_independent(
        preds in prop::collection::vec(predicate_strategy(), 0..5),
    ) {
        let forward = Pattern::new(preds.clone());
        let mut reversed_preds = preds;
        reversed_preds.reverse();
        let reversed = Pattern::new(reversed_preds);
        prop_assert_eq!(forward, reversed);
    }

    #[test]
    fn parents_have_one_fewer_predicate(
        preds in prop::collection::vec(predicate_strategy(), 1..5),
    ) {
        let p = Pattern::new(preds);
        for parent in p.parents() {
            prop_assert_eq!(parent.len(), p.len() - 1);
            prop_assert!(parent.is_subpattern_of(&p));
        }
        prop_assert_eq!(p.parents().len(), p.len());
    }

    #[test]
    fn conjunction_is_commutative(
        df in frame_strategy(),
        a in prop::collection::vec(predicate_strategy(), 0..3),
        b in prop::collection::vec(predicate_strategy(), 0..3),
    ) {
        let pa = Pattern::new(a);
        let pb = Pattern::new(b);
        let ab = pa.and(&pb);
        let ba = pb.and(&pa);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(
            ab.coverage(&df).unwrap(),
            ba.coverage(&df).unwrap()
        );
    }
}
