//! Integration tests for the causal substrate against the data generators'
//! planted ground truth, including the Table 6 DAG variants and PC
//! discovery.

use faircap::causal::{CateEngine, CateQuery, EstimatorKind};
use faircap::data::{build_dag_variant, german, so, DagVariant};
use faircap::table::{Mask, Pattern, Value};
use std::sync::Arc;

#[test]
fn linear_and_stratified_agree_on_so() {
    let ds = so::generate(12_000, 5);
    let engine =
        CateEngine::new(Arc::new(ds.df.clone()), Arc::new(ds.dag.clone()), "salary").unwrap();
    let linear: CateQuery<'_> = engine.with_estimator(&EstimatorKind::Linear);
    let strat: CateQuery<'_> = engine.with_estimator(&EstimatorKind::Stratified);
    let all = Mask::ones(ds.df.n_rows());
    for (attr, value) in [
        ("certifications", "yes"),
        ("open_source", "yes"),
        ("training", "yes"),
    ] {
        let p = Pattern::of_eq(&[(attr, Value::from(value))]);
        let a = linear.cate(&all, &p).expect("linear estimable").cate;
        let b = strat.cate(&all, &p).expect("stratified estimable").cate;
        let scale = a.abs().max(1_000.0);
        assert!(
            (a - b).abs() / scale < 0.5,
            "{attr}: linear {a} vs stratified {b}"
        );
    }
}

#[test]
fn ipw_agrees_with_linear_on_so() {
    let ds = so::generate(12_000, 5);
    let engine =
        CateEngine::new(Arc::new(ds.df.clone()), Arc::new(ds.dag.clone()), "salary").unwrap();
    let linear: CateQuery<'_> = engine.with_estimator(&EstimatorKind::Linear);
    let ipw: CateQuery<'_> = engine.with_estimator(&EstimatorKind::Ipw);
    let all = Mask::ones(ds.df.n_rows());
    for (attr, value) in [("certifications", "yes"), ("training", "yes")] {
        let p = Pattern::of_eq(&[(attr, Value::from(value))]);
        let a = linear.cate(&all, &p).expect("linear estimable").cate;
        let b = ipw.cate(&all, &p).expect("ipw estimable").cate;
        assert!((a - b).abs() < 2_000.0, "{attr}: linear {a} vs ipw {b}");
    }
}

#[test]
fn planted_effects_recovered_within_tolerance() {
    let ds = so::generate(25_000, 13);
    let owner =
        CateEngine::new(Arc::new(ds.df.clone()), Arc::new(ds.dag.clone()), "salary").unwrap();
    let engine = owner.with_estimator(&EstimatorKind::Linear);
    let prot = ds.protected_mask();
    let nonprot = !&prot;
    // (pattern, group, planted effect)
    let cases = [
        ("certifications", so::CERTIFICATIONS_EFFECT),
        ("open_source", so::OPEN_SOURCE_EFFECT),
        ("training", so::TRAINING_EFFECT),
        ("remote_work", so::REMOTE_EFFECT),
    ];
    for (attr, (effect_np, effect_p)) in cases {
        let p = Pattern::of_eq(&[(attr, Value::from("yes"))]);
        let est_np = engine.cate(&nonprot, &p).expect("estimable").cate;
        let est_p = engine.cate(&prot, &p).expect("estimable").cate;
        assert!(
            (est_np - effect_np).abs() < 2_000.0,
            "{attr} non-protected: {est_np} vs planted {effect_np}"
        );
        assert!(
            (est_p - effect_p).abs() < 2_500.0,
            "{attr} protected: {est_p} vs planted {effect_p}"
        );
    }
}

#[test]
fn adjustment_matters_education_is_confounded() {
    // Education is confounded by age / parents' education / GDP; the
    // 1-layer DAG (no adjustment) must disagree with the original DAG.
    let ds = so::generate(20_000, 21);
    let one_layer = build_dag_variant(&ds, DagVariant::OneLayerIndep);
    let df = Arc::new(ds.df.clone());
    let adjusted_engine =
        CateEngine::new(Arc::clone(&df), Arc::new(ds.dag.clone()), "salary").unwrap();
    let naive_engine =
        CateEngine::new(Arc::clone(&df), Arc::new(one_layer.clone()), "salary").unwrap();
    let adjusted = adjusted_engine.with_estimator(&EstimatorKind::Linear);
    let naive = naive_engine.with_estimator(&EstimatorKind::Linear);
    let nonprot = !&ds.protected_mask();
    let p = Pattern::of_eq(&[("education", Value::from("phd"))]);
    let est_adj = adjusted.cate(&nonprot, &p).expect("estimable").cate;
    let est_naive = naive.cate(&nonprot, &p).expect("estimable").cate;
    // Ground truth: CATE contrasts phd against the *control mix* of
    // education levels, so the planted phd premium (18k vs `none`) minus
    // the control rows' average planted premium is the target.
    let control = nonprot.andnot(&p.coverage(&ds.df).unwrap());
    let mut control_mean_effect = 0.0;
    for (level, effect) in [("none", 0.0), ("bachelor", 12_000.0), ("master", 16_000.0)] {
        let level_mask = Pattern::of_eq(&[("education", Value::from(level))])
            .coverage(&ds.df)
            .unwrap();
        let share = control.intersect_count(&level_mask) as f64 / control.count() as f64;
        control_mean_effect += share * effect;
    }
    let truth = 18_000.0 - control_mean_effect;
    assert!(
        (est_adj - truth).abs() < 2_500.0,
        "adjusted {est_adj} should be near control-mix truth {truth}"
    );
    assert!(
        (est_naive - truth).abs() > (est_adj - truth).abs(),
        "naive {est_naive} should be further from truth {truth} than adjusted {est_adj}"
    );
}

#[test]
fn dag_variants_have_expected_structure() {
    let ds = so::generate(1_000, 3);
    let one = build_dag_variant(&ds, DagVariant::OneLayerIndep);
    assert_eq!(one.n_edges(), ds.attributes().len());
    let two_mut = build_dag_variant(&ds, DagVariant::TwoLayerMutable);
    assert_eq!(
        two_mut.n_edges(),
        ds.immutable.len() * ds.mutable.len() + ds.mutable.len()
    );
    let two = build_dag_variant(&ds, DagVariant::TwoLayer);
    assert_eq!(two.n_edges(), two_mut.n_edges() + ds.immutable.len());
    // all are DAGs over the same vocabulary
    for dag in [&one, &two_mut, &two] {
        assert!(dag.has_node("salary"));
        assert_eq!(dag.topological_order().len(), dag.n_nodes());
    }
}

#[test]
fn pc_recovers_signal_on_german_subset() {
    // Full 21-column PC is slow; a focused subset must find the strong
    // planted edges (checking_balance and savings drive good_credit).
    let ds = german::generate(8_000, 17);
    let vars: Vec<String> = ["employment", "checking_balance", "savings", "good_credit"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let dag = faircap::causal::discovery::pc_dag(
        &ds.df,
        &vars,
        faircap::causal::discovery::PcConfig::default(),
    )
    .unwrap();
    let credit = dag.node("good_credit").unwrap();
    let checking = dag.node("checking_balance").unwrap();
    // the dependency must be detected (either orientation acceptable for a
    // Markov-equivalent structure)
    assert!(
        dag.has_edge(checking, credit) || dag.has_edge(credit, checking),
        "checking_balance–good_credit edge missing:\n{}",
        dag.to_dot()
    );
    assert_eq!(dag.topological_order().len(), dag.n_nodes());
}

#[test]
fn estimates_stable_across_reasonable_dags() {
    // Table 6's SO claim: estimates are robust to DAG misspecification for
    // a treatment whose confounders are included either way.
    let ds = so::generate(15_000, 29);
    let all = Mask::ones(ds.df.n_rows());
    let p = Pattern::of_eq(&[("computer_hours", Value::from("9-12"))]);
    let mut estimates = Vec::new();
    for variant in [
        DagVariant::Original,
        DagVariant::TwoLayerMutable,
        DagVariant::TwoLayer,
    ] {
        let dag = build_dag_variant(&ds, variant);
        let engine =
            CateEngine::new(Arc::new(ds.df.clone()), Arc::new(dag.clone()), "salary").unwrap();
        estimates.push(
            engine
                .cate(&all, &p, &EstimatorKind::Linear)
                .expect("estimable")
                .cate,
        );
    }
    let min = estimates.iter().copied().fold(f64::INFINITY, f64::min);
    let max = estimates.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    assert!(
        max - min < 6_000.0,
        "estimates should be stable across DAGs: {estimates:?}"
    );
}
