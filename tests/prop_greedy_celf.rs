//! Property test: the lazy (CELF) greedy selection must be **bit-identical**
//! to the eager reference oracle (`greedy::reference`) — same rules, same
//! selection order, same summary floats — across random candidate pools,
//! constraint mixes, and input permutations. The CELF heap only reorders
//! *when* scores are computed, never *what* is selected.

use faircap::core::algorithm::greedy::{greedy_select_with_stats, reference};
use faircap::core::{
    CoverageConstraint, FairCapConfig, FairnessConstraint, FairnessScope, Rule, RuleUtility,
};
use faircap::table::{Mask, Pattern, Value};
use proptest::prelude::*;

const N: usize = 64;
const N_PROTECTED: usize = 24;

fn protected() -> Mask {
    Mask::from_indices(N, &(0..N_PROTECTED).collect::<Vec<_>>())
}

/// Rules with arbitrary coverages and utilities, including non-positive
/// overall utilities (exercising the pre-filter) and colliding patterns
/// (exercising deterministic tie-breaks). `idx` is drawn independently of
/// the vector position so duplicates occur.
fn rule_strategy() -> impl Strategy<Value = Rule> {
    (
        prop::collection::vec(any::<bool>(), N),
        -5.0f64..50.0,
        -20.0f64..50.0,
        -20.0f64..50.0,
        0u8..6,
        0u8..4,
    )
        .prop_map(|(cov, overall, prot, non_prot, g, t)| {
            let coverage = Mask::from_bools(&cov);
            Rule {
                grouping: Pattern::of_eq(&[("g", Value::Int(i64::from(g)))]),
                intervention: Pattern::of_eq(&[("t", Value::Int(i64::from(t)))]),
                coverage_protected: &coverage & &protected(),
                coverage,
                utility: RuleUtility {
                    overall,
                    protected: prot,
                    non_protected: non_prot,
                    p_value: 0.01,
                },
                benefit: overall.max(0.0),
            }
        })
}

fn scope_strategy() -> impl Strategy<Value = FairnessScope> {
    any::<bool>().prop_map(|g| {
        if g {
            FairnessScope::Group
        } else {
            FairnessScope::Individual
        }
    })
}

fn fairness_strategy() -> impl Strategy<Value = FairnessConstraint> {
    prop_oneof![
        Just(FairnessConstraint::None),
        (scope_strategy(), 0.0f64..60.0).prop_map(|(scope, epsilon)| {
            FairnessConstraint::StatisticalParity { scope, epsilon }
        }),
        (scope_strategy(), -10.0f64..40.0)
            .prop_map(|(scope, tau)| FairnessConstraint::BoundedGroupLoss { scope, tau }),
    ]
}

fn coverage_strategy() -> impl Strategy<Value = CoverageConstraint> {
    prop_oneof![
        Just(CoverageConstraint::None),
        (0.0f64..0.9, 0.0f64..0.9).prop_map(|(theta, theta_protected)| {
            CoverageConstraint::Group {
                theta,
                theta_protected,
            }
        }),
    ]
}

fn config_strategy() -> impl Strategy<Value = FairCapConfig> {
    (
        fairness_strategy(),
        coverage_strategy(),
        1usize..6,
        0.0f64..0.05,
    )
        .prop_map(
            |(fairness, coverage, max_rules, min_marginal_gain)| FairCapConfig {
                fairness,
                coverage,
                max_rules,
                min_marginal_gain,
                ..FairCapConfig::default()
            },
        )
}

fn assert_bit_identical(
    celf: &faircap::core::algorithm::greedy::GreedyOutcome,
    oracle: &faircap::core::algorithm::greedy::GreedyOutcome,
) -> std::result::Result<(), TestCaseError> {
    let a: Vec<String> = celf.selected.iter().map(|r| r.to_string()).collect();
    let b: Vec<String> = oracle.selected.iter().map(|r| r.to_string()).collect();
    prop_assert_eq!(a, b, "selection (order included) must match the oracle");
    for (x, y) in celf.selected.iter().zip(&oracle.selected) {
        prop_assert_eq!(
            x.benefit.to_bits(),
            y.benefit.to_bits(),
            "selected rule benefits must be the same floats"
        );
    }
    for (name, x, y) in [
        ("expected", celf.summary.expected, oracle.summary.expected),
        (
            "expected_protected",
            celf.summary.expected_protected,
            oracle.summary.expected_protected,
        ),
        (
            "expected_non_protected",
            celf.summary.expected_non_protected,
            oracle.summary.expected_non_protected,
        ),
        ("coverage", celf.summary.coverage, oracle.summary.coverage),
        (
            "coverage_protected",
            celf.summary.coverage_protected,
            oracle.summary.coverage_protected,
        ),
        (
            "unfairness",
            celf.summary.unfairness,
            oracle.summary.unfairness,
        ),
    ] {
        prop_assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "summary.{} must match bit-for-bit",
            name
        );
    }
    prop_assert_eq!(celf.constraints_met, oracle.constraints_met);
    Ok(())
}

proptest! {
    /// CELF equals the eager oracle on arbitrary pools and constraints.
    #[test]
    fn celf_matches_reference_oracle(
        rules in prop::collection::vec(rule_strategy(), 0..14),
        config in config_strategy(),
    ) {
        let protected = protected();
        let (celf, stats) =
            greedy_select_with_stats(rules.clone(), &config, N, &protected);
        let oracle = reference::greedy_select(rules, &config, N, &protected);
        assert_bit_identical(&celf, &oracle)?;
        // Laziness must never *add* selection rounds.
        prop_assert!(stats.rounds as usize >= celf.selected.len());
    }

    /// Input order is irrelevant: both paths canonicalize the pool, so a
    /// permuted pool yields the identical outcome.
    #[test]
    fn celf_is_permutation_invariant(
        rules in prop::collection::vec(rule_strategy(), 0..12),
        rot in 0usize..12,
        reverse in any::<bool>(),
        config in config_strategy(),
    ) {
        let protected = protected();
        let mut permuted = rules.clone();
        if !permuted.is_empty() {
            let shift = rot % permuted.len();
            permuted.rotate_left(shift);
        }
        if reverse {
            permuted.reverse();
        }
        let (a, _) = greedy_select_with_stats(permuted, &config, N, &protected);
        let oracle = reference::greedy_select(rules, &config, N, &protected);
        assert_bit_identical(&a, &oracle)?;
    }

    /// CELF performs no more score evaluations than the eager loop, which
    /// recomputes every remaining candidate each round.
    #[test]
    fn celf_never_evaluates_more_than_eager(
        rules in prop::collection::vec(rule_strategy(), 1..14),
        config in config_strategy(),
    ) {
        let protected = protected();
        let n_pool = rules.len() as u64;
        let (_, stats) = greedy_select_with_stats(rules, &config, N, &protected);
        // Eager bound: every round scores at most the whole pool.
        prop_assert!(
            stats.evaluations <= stats.rounds.max(1) * n_pool,
            "evaluations {} exceed eager bound {} × {}",
            stats.evaluations, stats.rounds.max(1), n_pool
        );
    }
}
