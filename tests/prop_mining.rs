//! Property-based tests for the mining substrate: Apriori's guarantees
//! (support threshold, downward closure, one-item-per-attribute) and the
//! positive-parent lattice invariants hold on random frames.

use faircap::mining::{apriori, positive_lattice, single_attribute_items, AprioriConfig};
use faircap::table::{DataFrame, Mask};
use proptest::prelude::*;
use std::collections::HashSet;

const LEVELS_A: [&str; 3] = ["a0", "a1", "a2"];
const LEVELS_B: [&str; 2] = ["b0", "b1"];
const LEVELS_C: [&str; 4] = ["c0", "c1", "c2", "c3"];

fn frame_strategy() -> impl Strategy<Value = DataFrame> {
    (10usize..150).prop_flat_map(|n| {
        (
            prop::collection::vec(0usize..LEVELS_A.len(), n),
            prop::collection::vec(0usize..LEVELS_B.len(), n),
            prop::collection::vec(0usize..LEVELS_C.len(), n),
        )
            .prop_map(|(a, b, c)| {
                let ca: Vec<&str> = a.iter().map(|&i| LEVELS_A[i]).collect();
                let cb: Vec<&str> = b.iter().map(|&i| LEVELS_B[i]).collect();
                let cc: Vec<&str> = c.iter().map(|&i| LEVELS_C[i]).collect();
                DataFrame::builder()
                    .cat("a", &ca)
                    .cat("b", &cb)
                    .cat("c", &cc)
                    .build()
                    .unwrap()
            })
    })
}

fn attrs() -> Vec<String> {
    vec!["a".into(), "b".into(), "c".into()]
}

proptest! {
    #[test]
    fn apriori_respects_support_threshold(
        df in frame_strategy(),
        min_support in 0.05f64..0.6,
        max_len in 1usize..4,
    ) {
        let within = Mask::ones(df.n_rows());
        let cfg = AprioriConfig { min_support, max_len, max_values_per_attr: 8 };
        let found = apriori(&df, &attrs(), &within, &cfg).unwrap();
        let min_count = ((min_support * df.n_rows() as f64).ceil() as usize).max(1);
        for f in &found {
            prop_assert!(f.count() >= min_count, "{} has {} < {}", f.pattern, f.count(), min_count);
            prop_assert!(f.pattern.len() <= max_len);
            // support mask is the true coverage
            prop_assert_eq!(&f.support, &f.pattern.coverage(&df).unwrap());
        }
    }

    #[test]
    fn apriori_downward_closure(df in frame_strategy()) {
        let within = Mask::ones(df.n_rows());
        let cfg = AprioriConfig { min_support: 0.1, max_len: 3, max_values_per_attr: 8 };
        let found = apriori(&df, &attrs(), &within, &cfg).unwrap();
        let keys: HashSet<_> = found.iter().map(|f| f.pattern.clone()).collect();
        for f in &found {
            if f.pattern.len() > 1 {
                for parent in f.pattern.parents() {
                    prop_assert!(keys.contains(&parent),
                        "parent {} of frequent {} missing", parent, f.pattern);
                }
            }
        }
    }

    #[test]
    fn apriori_is_complete_for_singletons(df in frame_strategy()) {
        // Every (attr, value) with enough support must appear as a
        // singleton pattern.
        let within = Mask::ones(df.n_rows());
        let cfg = AprioriConfig { min_support: 0.2, max_len: 1, max_values_per_attr: 8 };
        let found = apriori(&df, &attrs(), &within, &cfg).unwrap();
        let found_set: HashSet<String> =
            found.iter().map(|f| f.pattern.to_string()).collect();
        let min_count = ((0.2 * df.n_rows() as f64).ceil() as usize).max(1);
        let items = single_attribute_items(&df, &attrs(), &within, 8).unwrap();
        for (pred, mask) in items {
            if mask.count() >= min_count {
                prop_assert!(found_set.contains(&pred.to_string()),
                    "missing frequent singleton {}", pred);
            }
        }
    }

    #[test]
    fn apriori_support_matches_row_oracle(
        df in frame_strategy(),
        min_support in 0.05f64..0.5,
    ) {
        // The vertical-bitset support (word-fused AND+popcount over parent
        // masks) must agree with a naive per-row predicate scan.
        let within = Mask::ones(df.n_rows());
        let cfg = AprioriConfig { min_support, max_len: 3, max_values_per_attr: 8 };
        let found = apriori(&df, &attrs(), &within, &cfg).unwrap();
        for f in &found {
            for row in 0..df.n_rows() {
                let holds = f.pattern.predicates().iter().all(|p| {
                    df.get(row, &p.attr).unwrap() == p.value
                });
                prop_assert_eq!(
                    f.support.get(row), holds,
                    "pattern {} row {}: mask bit disagrees with the row scan",
                    f.pattern, row
                );
            }
        }
    }

    #[test]
    fn apriori_is_complete_vs_bruteforce(
        df in frame_strategy(),
        min_support in 0.1f64..0.5,
    ) {
        // Every conjunction of ≤3 items over distinct attributes that meets
        // the threshold must be mined — the prefix-join may not drop
        // candidates the naive O(items³) enumeration finds.
        let within = Mask::ones(df.n_rows());
        let cfg = AprioriConfig { min_support, max_len: 3, max_values_per_attr: 8 };
        let found = apriori(&df, &attrs(), &within, &cfg).unwrap();
        let found_set: HashSet<String> = found.iter().map(|f| f.pattern.to_string()).collect();
        let min_count = ((min_support * df.n_rows() as f64).ceil() as usize).max(1);
        let items = single_attribute_items(&df, &attrs(), &within, 8).unwrap();
        for i in 0..items.len() {
            for j in i..items.len() {
                for k in j..items.len() {
                    let picks: Vec<usize> = {
                        let mut v = vec![i, j, k];
                        v.dedup();
                        v
                    };
                    let mut attrs_seen: Vec<&str> =
                        picks.iter().map(|&p| items[p].0.attr.as_str()).collect();
                    attrs_seen.sort_unstable();
                    attrs_seen.dedup();
                    if attrs_seen.len() != picks.len() {
                        continue; // two items on one attribute
                    }
                    let mut mask = items[picks[0]].1.clone();
                    for &p in &picks[1..] {
                        mask = &mask & &items[p].1;
                    }
                    if mask.count() < min_count {
                        continue;
                    }
                    let preds: Vec<_> = picks.iter().map(|&p| items[p].0.clone()).collect();
                    let pattern = faircap::table::Pattern::new(preds);
                    prop_assert!(
                        found_set.contains(&pattern.to_string()),
                        "frequent {} ({} rows ≥ {}) not mined",
                        pattern, mask.count(), min_count
                    );
                }
            }
        }
    }

    #[test]
    fn lattice_nodes_have_positive_ancestry(df in frame_strategy()) {
        // Every evaluated node of length > 1 must have all its parents
        // evaluated and positive, per §5.2's materialization rule.
        let within = Mask::ones(df.n_rows());
        let items = single_attribute_items(&df, &attrs(), &within, 8).unwrap();
        // score = +1 if the pattern covers an even number of rows, −1 odd
        let nodes = positive_lattice(
            &items,
            3,
            |_, mask| Some(if mask.count() % 2 == 0 { 1.0 } else { -1.0 }),
            |&s| s > 0.0,
        );
        let positive: HashSet<_> = nodes
            .iter()
            .filter(|n| n.score > 0.0)
            .map(|n| n.pattern.clone())
            .collect();
        for n in &nodes {
            if n.pattern.len() > 1 {
                for parent in n.pattern.parents() {
                    prop_assert!(positive.contains(&parent),
                        "node {} materialized without positive parent {}",
                        n.pattern, parent);
                }
            }
            // masks are exact coverages
            prop_assert_eq!(&n.mask, &n.pattern.coverage(&df).unwrap());
        }
    }

    #[test]
    fn lattice_no_duplicate_nodes(df in frame_strategy()) {
        let within = Mask::ones(df.n_rows());
        let items = single_attribute_items(&df, &attrs(), &within, 8).unwrap();
        let nodes = positive_lattice(&items, 3, |_, _| Some(1.0), |&s| s > 0.0);
        let mut seen = HashSet::new();
        for n in &nodes {
            prop_assert!(seen.insert(n.pattern.clone()), "duplicate {}", n.pattern);
            // one predicate per attribute
            let attrs = n.pattern.attributes();
            let mut dedup = attrs.clone();
            dedup.dedup();
            prop_assert_eq!(attrs.len(), dedup.len());
        }
    }
}
