//! Property-based tests for CSV I/O: arbitrary frames survive a write/read
//! roundtrip, including hostile string content (quotes, commas, unicode).

use faircap::table::csv::{read_csv_from, write_csv_to};
use faircap::table::DataFrame;
use proptest::prelude::*;

/// Strings that stress the quoting logic but avoid newline-in-cell (our
/// reader is line-based; embedded newlines are rejected at write-read
/// equivalence level, so we exclude them from the generator and test the
/// rejection separately).
fn cell_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z]{0,8}",
        Just("has,comma".to_string()),
        Just("has\"quote".to_string()),
        Just("\"quoted\"".to_string()),
        Just("ünïcodé ✓".to_string()),
        Just(String::new()),
        Just("   spaces   ".to_string()),
        Just(",,".to_string()),
    ]
}

fn frame_strategy() -> impl Strategy<Value = DataFrame> {
    (1usize..40).prop_flat_map(|n| {
        (
            prop::collection::vec(cell_strategy(), n),
            prop::collection::vec(-1000i64..1000, n),
            prop::collection::vec(-100.0f64..100.0, n),
            prop::collection::vec(any::<bool>(), n),
        )
            .prop_map(|(texts, ints, floats, bools)| {
                let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
                DataFrame::builder()
                    .cat("text", &refs)
                    .int("n", ints)
                    .float("x", floats)
                    .bool("b", bools)
                    .build()
                    .unwrap()
            })
    })
}

proptest! {
    #[test]
    fn roundtrip_preserves_shape_and_values(df in frame_strategy()) {
        let mut buf = Vec::new();
        write_csv_to(&df, &mut buf).unwrap();
        let back = read_csv_from(buf.as_slice()).unwrap();
        prop_assert_eq!(back.n_rows(), df.n_rows());
        prop_assert_eq!(back.n_cols(), df.n_cols());
        prop_assert_eq!(back.names(), df.names());
        // Values survive cell-by-cell. Types may legitimately differ
        // (a float column whose sampled values happen to all be integral
        // re-infers as Int; an all-"true"/"false" text column as Bool), so
        // compare through the rendered value, with a numeric fast-path.
        for r in 0..df.n_rows() {
            for name in df.names() {
                let orig = df.get(r, name).unwrap();
                let read = back.get(r, name).unwrap();
                match (orig.as_f64(), read.as_f64()) {
                    (Some(a), Some(b)) => {
                        prop_assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()),
                            "row {} col {}: {} vs {}", r, name, a, b)
                    }
                    _ => prop_assert_eq!(
                        orig.to_string(),
                        read.to_string(),
                        "row {} col {}", r, name
                    ),
                }
            }
        }
    }

    #[test]
    fn float_roundtrip_exact_when_finite(values in prop::collection::vec(-1e12f64..1e12, 1..30)) {
        let df = DataFrame::builder().float("x", values.clone()).build().unwrap();
        let mut buf = Vec::new();
        write_csv_to(&df, &mut buf).unwrap();
        let back = read_csv_from(buf.as_slice()).unwrap();
        for (i, v) in values.iter().enumerate() {
            let got = back.get(i, "x").unwrap().as_f64().unwrap();
            // Display-based serialization of f64 in Rust is shortest-exact,
            // so the roundtrip is bit-exact.
            prop_assert_eq!(got, *v);
        }
    }
}
