//! Integration tests for the baselines and their IF-clause adaptations on
//! the synthetic datasets (the §7.2 comparison).

use faircap::baselines::{
    adapt_if_clauses, causumx, learn_decision_set, learn_falling_rule_list, FrlConfig, IdsConfig,
    IfClauseRole,
};
use faircap::core::{FairCapConfig, FairnessConstraint, FairnessScope};
use faircap::data::{so, Dataset};
use faircap::{FairCap, PrescriptionSession, SolveRequest};

fn session(ds: &Dataset) -> PrescriptionSession {
    FairCap::builder()
        .data(ds.df.clone())
        .dag(ds.dag.clone())
        .outcome(&ds.outcome)
        .immutable(ds.immutable.iter().cloned())
        .mutable(ds.mutable.iter().cloned())
        .protected(ds.protected.clone())
        .build()
        .expect("generated dataset is a valid problem instance")
}

#[test]
fn causumx_matches_unfair_faircap_shape() {
    let ds = so::generate(6_000, 42);
    let report = causumx(&session(&ds), 0.5).expect("causumx config is valid");
    assert!(report.label.contains("CauSumX"));
    assert!(report.summary.coverage >= 0.5);
    // No fairness: large disparity expected on this data.
    assert!(report.summary.unfairness > 5_000.0);
}

#[test]
fn ids_rules_predict_not_prescribe() {
    // §7.2: IDS rules are prediction rules, possibly mentioning non-causal
    // attributes; they never carry a causal guarantee. We verify they mine
    // the dominant correlate (gdp_group) which FairCap can never recommend
    // (it is immutable).
    let ds = so::generate(6_000, 42);
    let attrs = ds.attributes();
    let set = learn_decision_set(
        &ds.df,
        &attrs,
        &ds.outcome,
        &IdsConfig {
            lambda_interp: 0.1,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(!set.rules.is_empty());
    let mentions_immutable = set.rules.iter().any(|r| {
        r.pattern
            .attributes()
            .iter()
            .any(|a| ds.immutable.iter().any(|i| i == a))
    });
    assert!(
        mentions_immutable,
        "association rules should pick up immutable correlates"
    );
}

#[test]
fn frl_list_is_falling_on_so() {
    let ds = so::generate(6_000, 42);
    let attrs = ds.attributes();
    let frl = learn_falling_rule_list(&ds.df, &attrs, &ds.outcome, &FrlConfig::default()).unwrap();
    assert!(!frl.rules.is_empty());
    for w in frl.rules.windows(2) {
        assert!(w[0].probability >= w[1].probability - 1e-12);
    }
    // The top stratum should be a high-salary segment (high GDP and/or a
    // lucrative role) with probability well above the base rate.
    assert!(frl.rules[0].probability > 0.6);
}

#[test]
fn adaptations_produce_comparable_reports() {
    let ds = so::generate(6_000, 42);
    let s = session(&ds);
    let clauses = {
        let attrs = ds.attributes();
        learn_falling_rule_list(&ds.df, &attrs, &ds.outcome, &FrlConfig::default())
            .unwrap()
            .rules
            .into_iter()
            .map(|r| r.pattern)
            .collect::<Vec<_>>()
    };
    let as_grouping = adapt_if_clauses(
        &s,
        &clauses,
        IfClauseRole::Grouping,
        "FRL grouping",
        &FairCapConfig::default(),
    )
    .expect("clauses evaluate");
    let as_intervention = adapt_if_clauses(
        &s,
        &clauses,
        IfClauseRole::Intervention,
        "FRL intervention",
        &FairCapConfig::default(),
    )
    .expect("clauses evaluate");
    // intervention adaptation covers everyone by construction
    if !as_intervention.rules.is_empty() {
        assert!((as_intervention.summary.coverage - 1.0).abs() < 1e-9);
    }
    // grouping adaptation only covers the clause regions
    assert!(as_grouping.summary.coverage <= 1.0);
}

#[test]
fn faircap_beats_adaptations_on_utility_fairness_tradeoff() {
    // Table 4's headline comparison: with fairness constraints FairCap
    // should dominate the baselines on protected utility.
    let ds = so::generate(6_000, 42);
    let s = session(&ds);
    let cfg = FairCapConfig {
        fairness: FairnessConstraint::StatisticalParity {
            scope: FairnessScope::Group,
            epsilon: 10_000.0,
        },
        ..FairCapConfig::default()
    };
    let faircap = s.solve(&SolveRequest::from(cfg)).expect("config is valid");
    let clauses = {
        let attrs = ds.attributes();
        learn_falling_rule_list(&ds.df, &attrs, &ds.outcome, &FrlConfig::default())
            .unwrap()
            .rules
            .into_iter()
            .map(|r| r.pattern)
            .collect::<Vec<_>>()
    };
    let baseline = adapt_if_clauses(
        &s,
        &clauses,
        IfClauseRole::Grouping,
        "FRL grouping",
        &FairCapConfig::default(),
    )
    .expect("clauses evaluate");
    assert!(
        faircap.summary.expected_protected >= baseline.summary.expected_protected,
        "FairCap protected utility {} should be ≥ baseline {}",
        faircap.summary.expected_protected,
        baseline.summary.expected_protected
    );
}
