//! Failure-injection and edge-case tests: degenerate inputs must produce
//! clean errors or empty solutions, never panics or nonsense.

use faircap::causal::{estimate_cate, CateEngine, CausalError, Dag, EstimatorKind};
use faircap::core::FairCapConfig;
use faircap::table::{DataFrame, Mask, Pattern, Value};
use faircap::{FairCap, SolveRequest};
use std::sync::Arc;

fn solve_with(
    df: &DataFrame,
    dag: &Dag,
    outcome: &str,
    immutable: &[String],
    mutable: &[String],
    protected: &Pattern,
    cfg: FairCapConfig,
) -> faircap::core::SolutionReport {
    FairCap::builder()
        .data(df.clone())
        .dag(dag.clone())
        .outcome(outcome)
        .immutable(immutable.iter().cloned())
        .mutable(mutable.iter().cloned())
        .protected(protected.clone())
        .build()
        .expect("structurally valid instance")
        .solve(&SolveRequest::from(cfg))
        .expect("config is valid")
}

/// A tiny fully-specified problem for degenerate-input probes.
fn tiny_problem() -> (DataFrame, Dag, Vec<String>, Vec<String>) {
    let n = 60;
    let seg: Vec<&str> = (0..n).map(|i| if i % 2 == 0 { "a" } else { "b" }).collect();
    let t: Vec<&str> = (0..n)
        .map(|i| if i % 3 == 0 { "yes" } else { "no" })
        .collect();
    let o: Vec<f64> = (0..n)
        .map(|i| 10.0 + (i % 3 == 0) as u8 as f64 * 5.0 + (i % 7) as f64)
        .collect();
    let df = DataFrame::builder()
        .cat("seg", &seg)
        .cat("t", &t)
        .float("o", o)
        .build()
        .unwrap();
    let dag = Dag::from_edges(&[("seg", "t"), ("seg", "o"), ("t", "o")]).unwrap();
    (df, dag, vec!["seg".into()], vec!["t".into()])
}

#[test]
fn empty_protected_group_runs_cleanly() {
    let (df, dag, imm, mt) = tiny_problem();
    // A protected pattern matching nothing.
    let protected = Pattern::of_eq(&[("seg", Value::from("nobody"))]);
    let report = solve_with(
        &df,
        &dag,
        "o",
        &imm,
        &mt,
        &protected,
        FairCapConfig::default(),
    );
    // With no protected rows, protected metrics degrade to 0 but the run
    // completes and still finds utility for the rest.
    assert_eq!(report.summary.coverage_protected, 0.0);
    assert_eq!(report.summary.expected_protected, 0.0);
}

#[test]
fn protected_group_is_everyone() {
    let (df, dag, imm, mt) = tiny_problem();
    let protected = Pattern::empty(); // covers all rows
    let report = solve_with(
        &df,
        &dag,
        "o",
        &imm,
        &mt,
        &protected,
        FairCapConfig::default(),
    );
    if !report.rules.is_empty() {
        // Everyone protected → non-protected side is empty → its expected
        // utility defaults to 0.
        assert_eq!(report.summary.expected_non_protected, 0.0);
        assert!(report.summary.coverage_protected > 0.0);
    }
}

#[test]
fn single_valued_mutable_yields_no_rules() {
    // The mutable attribute is constant: no contrast exists anywhere.
    let n = 40;
    let seg: Vec<&str> = (0..n).map(|i| if i % 2 == 0 { "a" } else { "b" }).collect();
    let t = vec!["same"; n];
    let o: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let df = DataFrame::builder()
        .cat("seg", &seg)
        .cat("t", &t)
        .float("o", o)
        .build()
        .unwrap();
    let dag = Dag::from_edges(&[("t", "o"), ("seg", "o")]).unwrap();
    let imm = vec!["seg".to_string()];
    let mt = vec!["t".to_string()];
    let protected = Pattern::of_eq(&[("seg", Value::from("a"))]);
    let report = solve_with(
        &df,
        &dag,
        "o",
        &imm,
        &mt,
        &protected,
        FairCapConfig::default(),
    );
    assert!(report.rules.is_empty());
}

#[test]
fn constant_outcome_yields_no_significant_rules() {
    let (df, dag, imm, mt) = tiny_problem();
    let constant = df
        .with_column("o", faircap::table::Column::Float(vec![7.0; df.n_rows()]))
        .unwrap();
    let protected = Pattern::of_eq(&[("seg", Value::from("a"))]);
    let report = solve_with(
        &constant,
        &dag,
        "o",
        &imm,
        &mt,
        &protected,
        FairCapConfig::default(),
    );
    // Zero effect everywhere: either no rules, or none with positive utility.
    assert!(report.rules.is_empty(), "{:?}", report.rules.len());
}

#[test]
fn collinear_covariates_survive_via_ridge() {
    // Two identical covariate columns make XᵀX singular; the ridge fallback
    // must still produce a sane effect estimate.
    let n = 200;
    let z: Vec<&str> = (0..n).map(|i| if i % 2 == 0 { "u" } else { "v" }).collect();
    let t: Vec<bool> = (0..n).map(|i| i % 4 < 2).collect();
    let o: Vec<f64> = (0..n)
        .map(|i| if i % 4 < 2 { 20.0 } else { 10.0 } + (i % 2) as f64)
        .collect();
    let df = DataFrame::builder()
        .cat("z1", &z)
        .cat("z2", &z) // exact duplicate of z1
        .float("o", o)
        .build()
        .unwrap();
    let treated = Mask::from_bools(&t);
    let est = estimate_cate(
        EstimatorKind::Linear,
        &df,
        &Mask::ones(n),
        &treated,
        "o",
        &["z1".into(), "z2".into()],
    )
    .unwrap();
    assert!((est.cate - 10.0).abs() < 0.5, "cate = {}", est.cate);
}

#[test]
fn engine_rejects_missing_outcome_with_typed_error() {
    // Pre-0.2 the engine silently answered `None` forever; now the bad
    // outcome is rejected at construction with the column named.
    let (df, dag, _, _) = tiny_problem();
    let err = CateEngine::new(Arc::new(df), Arc::new(dag), "no_such_column").unwrap_err();
    assert!(err.to_string().contains("no_such_column"));
    assert!(matches!(err, CausalError::Table(_)));
}

#[test]
fn builder_rejects_missing_outcome_with_typed_error() {
    let (df, dag, imm, mt) = tiny_problem();
    let err = FairCap::builder()
        .data(df)
        .dag(dag)
        .outcome("no_such_column")
        .immutable(imm)
        .mutable(mt)
        .protected(Pattern::of_eq(&[("seg", Value::from("a"))]))
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("no_such_column"), "{err}");
}

#[test]
fn zero_row_frame_degenerates_cleanly() {
    let df = DataFrame::builder()
        .cat("seg", &Vec::<&str>::new())
        .cat("t", &Vec::<&str>::new())
        .float("o", vec![])
        .build()
        .unwrap();
    let dag = Dag::from_edges(&[("seg", "o"), ("t", "o")]).unwrap();
    let imm = vec!["seg".to_string()];
    let mt = vec!["t".to_string()];
    let protected = Pattern::of_eq(&[("seg", Value::from("a"))]);
    let report = solve_with(
        &df,
        &dag,
        "o",
        &imm,
        &mt,
        &protected,
        FairCapConfig::default(),
    );
    assert!(report.rules.is_empty());
    assert_eq!(report.summary.coverage, 0.0);
}

#[test]
fn max_rules_zero_yields_empty_solution() {
    let (df, dag, imm, mt) = tiny_problem();
    let protected = Pattern::of_eq(&[("seg", Value::from("a"))]);
    let cfg = FairCapConfig {
        max_rules: 0,
        ..FairCapConfig::default()
    };
    let report = solve_with(&df, &dag, "o", &imm, &mt, &protected, cfg);
    assert!(report.rules.is_empty());
}
