//! Session snapshot / warm-start integration tests on the German Credit
//! stand-in — the serving-restart story: solve, snapshot to disk, restart
//! into a fresh session, and re-solve with **zero** estimate-cache misses
//! and a bit-identical ruleset.

use faircap::core::{SessionSnapshot, SolutionReport};
use faircap::data::{german, Dataset};
use faircap::{FairCap, PrescriptionSession, SolveRequest};

fn dataset() -> Dataset {
    german::generate(1_200, 7)
}

fn session(ds: &Dataset) -> faircap::core::SessionBuilder {
    FairCap::builder()
        .data(ds.df.clone())
        .dag(ds.dag.clone())
        .outcome(&ds.outcome)
        .immutable(ds.immutable.iter().cloned())
        .mutable(ds.mutable.iter().cloned())
        .protected(ds.protected.clone())
}

fn fingerprint(report: &SolutionReport) -> (Vec<String>, String) {
    (
        report.rules.iter().map(|r| r.to_string()).collect(),
        format!("{:?}", report.summary),
    )
}

#[test]
fn warm_started_session_solves_with_zero_misses() {
    let ds = dataset();
    let cold: PrescriptionSession = session(&ds).build().unwrap();
    let cold_report = cold.solve(&SolveRequest::default()).unwrap();
    assert!(cold.cache_stats().misses > 0, "cold solve estimates");

    // Serialize to disk and restore — the restart path, not just an
    // in-process handoff.
    let path = std::env::temp_dir().join("faircap_snapshot_integration.fc");
    std::fs::write(&path, cold.snapshot().encode()).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let snapshot = SessionSnapshot::decode(&text).unwrap();
    assert_eq!(snapshot.n_rows, ds.df.n_rows());

    let warm: PrescriptionSession = session(&ds).warm_start(snapshot).build().unwrap();
    let warm_report = warm.solve(&SolveRequest::default()).unwrap();

    let stats = warm.cache_stats();
    assert_eq!(
        stats.misses, 0,
        "a warm-started re-solve of the identical workload must not estimate anything"
    );
    assert!(stats.hits > 0, "…and must actually hit the restored cache");
    assert_eq!(
        fingerprint(&warm_report),
        fingerprint(&cold_report),
        "warm and cold solves must produce identical rulesets"
    );
}

#[test]
fn warm_start_covers_constraint_sweeps_seen_before_the_snapshot() {
    use faircap::core::{FairnessConstraint, FairnessScope};
    let ds = dataset();
    let cold = session(&ds).build().unwrap();
    let sweep = [
        FairnessConstraint::None,
        FairnessConstraint::StatisticalParity {
            scope: FairnessScope::Group,
            epsilon: 0.05,
        },
    ];
    for fairness in sweep {
        cold.solve(&SolveRequest::default().fairness(fairness))
            .unwrap();
    }
    let snapshot = SessionSnapshot::decode(&cold.snapshot().encode()).unwrap();
    let warm = session(&ds).warm_start(snapshot).build().unwrap();
    for fairness in sweep {
        warm.solve(&SolveRequest::default().fairness(fairness))
            .unwrap();
    }
    assert_eq!(
        warm.cache_stats().misses,
        0,
        "the snapshot covers the whole sweep, not just the last solve"
    );
}

#[test]
fn estimate_cache_bound_holds_under_warm_start_and_solve() {
    let ds = dataset();
    let cold = session(&ds).build().unwrap();
    cold.solve(&SolveRequest::default()).unwrap();
    let snapshot = cold.snapshot();
    let full = snapshot.state.estimates.len();
    assert!(
        full > 16,
        "fixture must be big enough to overflow the bound"
    );

    // Restoring a big snapshot into a bounded session keeps the bound.
    let warm = session(&ds).warm_start(snapshot).build().unwrap();
    warm.solve(&SolveRequest::default().estimate_cache_bound(16))
        .unwrap();
    let stats = warm.cache_stats();
    assert!(
        stats.entries <= 16,
        "entry count {} exceeds the configured LRU bound",
        stats.entries
    );
    assert!(stats.evictions > 0);
}
