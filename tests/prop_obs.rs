//! Property-based tests for the observability substrate: log-bucketed
//! histograms must stay within their advertised quantile error bound and
//! merge losslessly, and span trees must keep their structural
//! invariants under arbitrary shapes — including panicking scopes.

use faircap::obs::{Histogram, Span, Trace, RELATIVE_ERROR_BOUND};
use proptest::prelude::*;

/// Exact nearest-rank quantile over a sorted sample, mirroring the
/// histogram's rank convention: `rank = ceil(q·n)` clamped to `[1, n]`.
fn exact_nearest_rank(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// Grow `parent`'s subtree: each element of `shape` is the fan-out at one
/// DFS-visited node, consumed left to right, depth-bounded so arbitrary
/// inputs terminate.
fn build_subtree(parent: &Span, shape: &mut std::slice::Iter<'_, usize>, depth: usize) {
    if depth == 0 {
        return;
    }
    if let Some(&fanout) = shape.next() {
        for i in 0..fanout {
            let child = parent.child(format!("d{depth}_{i}"));
            build_subtree(&child, shape, depth - 1);
        }
    }
}

proptest! {
    /// Histogram quantiles are nearest-rank with bounded relative error:
    /// always ≥ the exact sample at that rank and at most
    /// `(1 + RELATIVE_ERROR_BOUND)×` it, exactly the maximum at q = 1.
    #[test]
    fn histogram_quantile_within_error_bound(
        samples in prop::collection::vec(0u64..1_000_000_000, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let hist = Histogram::new();
        for &v in &samples {
            hist.record(v);
        }
        let mut samples = samples;
        samples.sort_unstable();
        let exact = exact_nearest_rank(&samples, q);
        let got = hist.quantile(q).expect("non-empty histogram");
        prop_assert!(got >= exact, "q={q}: histogram {got} < exact {exact}");
        prop_assert!(
            got as f64 <= exact as f64 * (1.0 + RELATIVE_ERROR_BOUND) + 1.0,
            "q={q}: histogram {got} exceeds bound around exact {exact}"
        );
        prop_assert_eq!(hist.quantile(1.0), Some(*samples.last().unwrap()));
    }

    /// `merge_from` is exactly equivalent to having recorded the other
    /// histogram's values locally: bucket-for-bucket snapshot equality.
    #[test]
    fn histogram_merge_equals_record_all(
        a in prop::collection::vec(0u64..1_000_000_000, 0..100),
        b in prop::collection::vec(0u64..1_000_000_000, 0..100),
    ) {
        let left = Histogram::new();
        let right = Histogram::new();
        let combined = Histogram::new();
        for &v in &a {
            left.record(v);
            combined.record(v);
        }
        for &v in &b {
            right.record(v);
            combined.record(v);
        }
        left.merge_from(&right);
        prop_assert_eq!(left.snapshot(), combined.snapshot());
        prop_assert_eq!(left.count(), (a.len() + b.len()) as u64);
    }

    /// Arbitrary span trees keep their structural invariants: unique ids,
    /// every non-root parent id resolves, and children nest strictly
    /// inside their parent's interval.
    #[test]
    fn span_tree_invariants(shape in prop::collection::vec(0usize..4, 0..12)) {
        let trace = Trace::new("prop");
        {
            let root = trace.root("request");
            build_subtree(&root, &mut shape.iter(), 4);
        }
        let records = trace.records();
        prop_assert!(!records.is_empty(), "root span must be recorded");
        let mut ids: Vec<u64> = records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), records.len(), "span ids must be unique");
        let root = records
            .iter()
            .find(|r| r.parent.is_none())
            .expect("exactly one root");
        for record in &records {
            prop_assert!(record.end_ns >= record.start_ns);
            if let Some(parent_id) = record.parent {
                let parent = records
                    .iter()
                    .find(|r| r.id == parent_id)
                    .expect("parent span is recorded");
                prop_assert!(
                    record.start_ns >= parent.start_ns && record.end_ns <= parent.end_ns,
                    "child [{}, {}] escapes parent [{}, {}]",
                    record.start_ns, record.end_ns, parent.start_ns, parent.end_ns
                );
            } else {
                prop_assert_eq!(record.id, root.id, "only one root span");
            }
        }
    }

    /// Spans record on `Drop`, so a panicking scope still flushes every
    /// span that was open when the panic unwound through it.
    #[test]
    fn panicking_scope_records_all_open_spans(depth in 1usize..8) {
        let trace = Trace::new("panic");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let root = trace.root("request");
            fn descend(parent: &Span, remaining: usize) {
                let child = parent.child(format!("level{remaining}"));
                if remaining == 1 {
                    panic!("injected failure");
                }
                descend(&child, remaining - 1);
            }
            descend(&root, depth);
        }));
        prop_assert!(result.is_err(), "the injected panic must propagate");
        let records = trace.records();
        // Root plus one span per level, all recorded despite the unwind.
        prop_assert_eq!(records.len(), depth + 1);
        prop_assert!(records.iter().any(|r| r.parent.is_none()));
    }
}
