//! Integration tests for the `faircap-serve` front end: admission control,
//! concurrency correctness, metrics, snapshot warm boot, keep-alive
//! conformance, request coalescing, and graceful drain.
//!
//! The headline acceptance criteria live here:
//!
//! * a booted server answers ≥ 8 concurrent `POST /v1/solve` requests
//!   against one shared session with rulesets **bit-identical** to direct
//!   `session.solve()` calls;
//! * `GET /v1/metrics` shows nonzero estimate-cache hits;
//! * the overload test observes at least one **429** while the bounded
//!   queue's high-water mark never exceeds its configured depth;
//! * N identical in-flight solves coalesce into **one** underlying solve
//!   with byte-identical fan-out bodies, and a waiter disconnecting
//!   mid-solve never cancels the shared computation;
//! * pipelined responses come back strictly in request order,
//!   `connection: close` is honoured, the idle reaper only closes idle
//!   connections, and graceful drain finishes every admitted pipelined
//!   request.

use faircap::causal::Dag;
use faircap::core::{FairCap, PrescriptionSession, SessionRegistry, SolveRequest};
use faircap::core::{Json, SessionSnapshot};
use faircap::serve::{ServeClient, ServeConfig, Server};
use faircap::table::{DataFrame, Pattern, Value};
use std::sync::Arc;
use std::time::Duration;

/// One shared synthetic workload: the Stack Overflow stand-in trimmed to
/// five columns (as in the CLI round-trip test) so debug-mode solves stay
/// fast while still exercising real mining and estimation.
fn dataset() -> (DataFrame, Dag, Pattern) {
    let ds = faircap::data::so::generate(2_000, 3);
    let keep = ["gdp_group", "age", "certifications", "training", "salary"];
    let df = ds.df.select(&keep).unwrap();
    let dag = Dag::parse_edge_list(
        "gdp_group -> salary\nage -> salary\ncertifications -> salary\ntraining -> salary",
    )
    .unwrap();
    let protected = Pattern::of_eq(&[("gdp_group", Value::from("low"))]);
    (df, dag, protected)
}

fn session() -> PrescriptionSession {
    let (df, dag, protected) = dataset();
    FairCap::builder()
        .data(df)
        .dag(dag)
        .outcome("salary")
        .immutable(["gdp_group", "age"])
        .mutable(["certifications", "training"])
        .protected(protected)
        .build()
        .unwrap()
}

fn boot(config: ServeConfig) -> (Server, ServeClient) {
    let registry = Arc::new(SessionRegistry::new());
    registry.register("so", session());
    let server = Server::start(config, registry).unwrap();
    let client = server.client();
    client.wait_ready(Duration::from_secs(30)).unwrap();
    (server, client)
}

/// A session whose cold solve takes long enough (~150 ms debug, ~20 ms
/// release) for a metrics poll loop to observe it in flight — the 2k-row
/// fixture above now solves in single-digit milliseconds since the kernel
/// layer landed, faster than any reasonable polling interval.
fn slow_session() -> PrescriptionSession {
    let ds = faircap::data::so::generate(60_000, 3);
    let keep = ["gdp_group", "age", "certifications", "training", "salary"];
    let df = ds.df.select(&keep).unwrap();
    let dag = Dag::parse_edge_list(
        "gdp_group -> salary\nage -> salary\ncertifications -> salary\ntraining -> salary",
    )
    .unwrap();
    let protected = Pattern::of_eq(&[("gdp_group", Value::from("low"))]);
    FairCap::builder()
        .data(df)
        .dag(dag)
        .outcome("salary")
        .immutable(["gdp_group", "age"])
        .mutable(["certifications", "training"])
        .protected(protected)
        .build()
        .unwrap()
}

fn rule_strings(doc: &Json) -> Vec<String> {
    doc.get("rules")
        .and_then(Json::as_arr)
        .expect("rules array")
        .iter()
        .map(|r| r.get("rule").and_then(Json::as_str).unwrap().to_owned())
        .collect()
}

#[test]
fn concurrent_solves_match_direct_session_bit_exactly() {
    let (server, client) = boot(ServeConfig {
        max_concurrent_solves: 4,
        solve_queue_depth: 32,
        ..ServeConfig::default()
    });

    // Direct ground truth on an identical (separately built) session.
    let direct = session()
        .solve(&SolveRequest::default().max_rules(5))
        .unwrap();
    let direct_rules: Vec<String> = direct.rules.iter().map(|r| r.to_string()).collect();
    assert!(!direct_rules.is_empty());

    let n = 8;
    let responses: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let client = client.clone();
                scope.spawn(move || {
                    client
                        .post_json("/v1/solve", r#"{"max_rules": 5}"#)
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for response in &responses {
        assert_eq!(response.status, 200, "{}", response.body);
        let doc = Json::parse(&response.body).unwrap();
        assert_eq!(
            rule_strings(&doc),
            direct_rules,
            "served ruleset must match a direct solve"
        );
        // Bit-exactness: the served summary floats reparse to the same
        // bits as the in-process report.
        let summary = doc.get("summary").unwrap();
        for (field, expected) in [
            ("expected", direct.summary.expected),
            ("unfairness", direct.summary.unfairness),
            ("coverage", direct.summary.coverage),
        ] {
            assert_eq!(
                summary.get(field).unwrap().as_f64().unwrap().to_bits(),
                expected.to_bits(),
                "summary.{field} must survive the wire bit-exactly"
            );
        }
        assert_eq!(doc.get("session").unwrap().as_str(), Some("so"));
    }

    // The shared session served all 8; later solves hit the warm caches.
    let metrics = client.get("/v1/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let doc = Json::parse(&metrics.body).unwrap();
    let so = doc.get("sessions").unwrap().get("so").unwrap();
    let hits = so
        .get("estimate_cache")
        .unwrap()
        .get("hits")
        .unwrap()
        .as_f64()
        .unwrap();
    assert!(hits > 0.0, "metrics must show nonzero cache hits");
    // The new solve-path blocks: intervention-cache counters and the
    // per-step hot accounting.
    let icache = so.get("intervention_cache").unwrap();
    assert!(
        icache.get("misses").unwrap().as_f64().unwrap() > 0.0,
        "first solves must populate the intervention cache"
    );
    let solve_stats = so.get("solve_stats").unwrap();
    let solves = solve_stats.get("solves").unwrap().as_f64().unwrap();
    // Coalescing may collapse identical in-flight requests, so the session
    // executed between 1 and n solves.
    assert!((1.0..=f64::from(n)).contains(&solves), "solves = {solves}");
    assert!(solve_stats.get("intervene_ms").unwrap().as_f64().unwrap() > 0.0);
    assert!(solve_stats.get("candidates").unwrap().as_f64().unwrap() > 0.0);
    assert_eq!(
        doc.get("requests")
            .unwrap()
            .get("solves_ok")
            .unwrap()
            .as_f64(),
        Some(f64::from(n)),
    );
    assert!(doc.get("solve_latency").unwrap().get("p50_ms").is_some());
    server.shutdown();
}

#[test]
fn overload_sheds_with_429_and_bounded_queue() {
    let queue_depth = 1;
    let (server, client) = boot(ServeConfig {
        max_concurrent_solves: 1,
        solve_queue_depth: queue_depth,
        ..ServeConfig::default()
    });

    let n = 10;
    let statuses: Vec<u16> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let client = client.clone();
                scope.spawn(move || {
                    // Distinct max_rules per request defeats whole-queue
                    // collapse into instant cache hits on the same key
                    // while still sharing the estimate cache.
                    let body = format!(r#"{{"max_rules": {}}}"#, 1 + (i % 3));
                    client.post_json("/v1/solve", &body).unwrap()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                let response = h.join().unwrap();
                if response.status == 200 {
                    // Every admitted request completes with a valid,
                    // non-empty ruleset.
                    let doc = Json::parse(&response.body).unwrap();
                    assert!(
                        !rule_strings(&doc).is_empty(),
                        "admitted solve returned an empty ruleset"
                    );
                }
                response.status
            })
            .collect()
    });

    let ok = statuses.iter().filter(|&&s| s == 200).count();
    let shed = statuses.iter().filter(|&&s| s == 429).count();
    assert!(
        ok >= 1,
        "at least one request must be admitted: {statuses:?}"
    );
    assert!(
        shed >= 1,
        "a 1-worker/1-slot server under 10 concurrent requests must shed: {statuses:?}"
    );
    assert_eq!(ok + shed, n, "only 200 and 429 are expected: {statuses:?}");

    let metrics = Json::parse(&client.get("/v1/metrics").unwrap().body).unwrap();
    let admission = metrics.get("admission").unwrap();
    let max_depth = admission.get("max_queue_depth").unwrap().as_f64().unwrap();
    assert!(
        max_depth <= queue_depth as f64,
        "queue high-water mark {max_depth} exceeded the bound {queue_depth}"
    );
    assert_eq!(
        metrics
            .get("requests")
            .unwrap()
            .get("rejected_429")
            .unwrap()
            .as_f64(),
        Some(shed as f64)
    );
    server.shutdown();
}

#[test]
fn solve_timeout_answers_504_and_counts() {
    let (server, client) = boot(ServeConfig {
        max_concurrent_solves: 1,
        solve_queue_depth: 4,
        // Far below any real solve on this dataset, so the timeout path
        // fires deterministically.
        solve_timeout: Duration::from_nanos(1),
        ..ServeConfig::default()
    });
    let response = client.post_json("/v1/solve", "{}").unwrap();
    assert_eq!(response.status, 504, "{}", response.body);
    let metrics = Json::parse(&client.get("/v1/metrics").unwrap().body).unwrap();
    assert_eq!(
        metrics
            .get("requests")
            .unwrap()
            .get("timeouts_504")
            .unwrap()
            .as_f64(),
        Some(1.0)
    );
    server.shutdown();
}

#[test]
fn request_validation_and_routing_errors() {
    let (server, client) = boot(ServeConfig::default());
    // Unknown endpoint / wrong method.
    assert_eq!(client.get("/v1/nope").unwrap().status, 404);
    assert_eq!(client.get("/v1/solve").unwrap().status, 405);
    // Malformed JSON and bad request fields are 400s.
    assert_eq!(
        client.post_json("/v1/solve", "{not json").unwrap().status,
        400
    );
    assert_eq!(
        client
            .post_json("/v1/solve", r#"{"bogus_knob": 1}"#)
            .unwrap()
            .status,
        400
    );
    // Unknown session is a 404 naming the registered ones.
    let response = client
        .post_json("/v1/solve", r#"{"session": "ghost"}"#)
        .unwrap();
    assert_eq!(response.status, 404);
    assert!(response.body.contains("so"), "{}", response.body);
    // Invalid constraint values pass parsing but fail engine validation: 422.
    assert_eq!(
        client
            .post_json("/v1/solve", r#"{"apriori_threshold": 7.5}"#)
            .unwrap()
            .status,
        422
    );
    // Sessions listing.
    let sessions = client.get("/v1/sessions").unwrap();
    assert_eq!(sessions.status, 200);
    let doc = Json::parse(&sessions.body).unwrap();
    let list = doc.get("sessions").unwrap().as_arr().unwrap();
    assert_eq!(list.len(), 1);
    assert_eq!(list[0].get("name").unwrap().as_str(), Some("so"));
    assert_eq!(list[0].get("outcome").unwrap().as_str(), Some("salary"));
    server.shutdown();
}

#[test]
fn snapshot_endpoint_writes_and_warm_boot_reuses() {
    let dir = std::env::temp_dir().join("faircap_serve_snapshot_test");
    let _ = std::fs::remove_dir_all(&dir);
    let (server, client) = boot(ServeConfig {
        snapshot_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    // Warm the caches, persist them over the API.
    assert_eq!(client.post_json("/v1/solve", "{}").unwrap().status, 200);
    let response = client.post_json("/v1/snapshot", "{}").unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let path = dir.join("so.fc");
    assert!(path.exists(), "snapshot endpoint must write {path:?}");
    server.shutdown();

    // Boot a second server warm-started from the persisted snapshot: the
    // same workload re-solves without a single estimate-cache miss.
    let snapshot = SessionSnapshot::decode(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let (df, dag, protected) = dataset();
    let warm = FairCap::builder()
        .data(df)
        .dag(dag)
        .outcome("salary")
        .immutable(["gdp_group", "age"])
        .mutable(["certifications", "training"])
        .protected(protected)
        .warm_start(snapshot)
        .build()
        .unwrap();
    let registry = Arc::new(SessionRegistry::new());
    registry.register("so", warm);
    let server = Server::start(ServeConfig::default(), Arc::clone(&registry)).unwrap();
    let client = server.client();
    client.wait_ready(Duration::from_secs(30)).unwrap();
    assert_eq!(client.post_json("/v1/solve", "{}").unwrap().status, 200);
    let metrics = Json::parse(&client.get("/v1/metrics").unwrap().body).unwrap();
    let cache = metrics
        .get("sessions")
        .unwrap()
        .get("so")
        .unwrap()
        .get("estimate_cache")
        .unwrap();
    assert_eq!(
        cache.get("misses").unwrap().as_f64(),
        Some(0.0),
        "warm-booted server must re-solve with zero estimate-cache misses"
    );
    assert!(cache.get("hits").unwrap().as_f64().unwrap() > 0.0);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_shutdown_drains_in_flight_solves() {
    // Boot over the slow fixture: the drain assertion needs a solve that is
    // reliably still running when the shutdown request lands.
    let registry = Arc::new(SessionRegistry::new());
    registry.register("so", slow_session());
    let server = Server::start(
        ServeConfig {
            max_concurrent_solves: 1,
            solve_queue_depth: 4,
            ..ServeConfig::default()
        },
        registry,
    )
    .unwrap();
    let client = server.client();
    client.wait_ready(Duration::from_secs(30)).unwrap();
    // Launch a solve and wait until the solve pool reports it in flight.
    let solver = {
        let client = client.clone();
        std::thread::spawn(move || client.post_json("/v1/solve", "{}").unwrap())
    };
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let metrics = Json::parse(&client.get("/v1/metrics").unwrap().body).unwrap();
        let in_flight = metrics
            .get("admission")
            .unwrap()
            .get("in_flight")
            .unwrap()
            .as_f64()
            .unwrap();
        if in_flight >= 1.0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "solve never became in-flight"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    // POST /v1/shutdown flips the request flag; the owner then drains.
    assert_eq!(client.post_json("/v1/shutdown", "{}").unwrap().status, 200);
    assert!(server.shutdown_requested());
    server.shutdown();
    // The in-flight solve was drained, not dropped.
    let response = solver.join().unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    // After shutdown the listener is gone.
    assert!(client.get("/healthz").is_err());
}

/// Read a numeric field off `/v1/metrics` by dotted path.
fn metric(client: &ServeClient, path: &str) -> f64 {
    let doc = Json::parse(&client.get("/v1/metrics").unwrap().body).unwrap();
    doc.get_path(path)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("metrics missing {path}"))
}

#[test]
fn pipelined_identical_solves_coalesce_into_one_underlying_solve() {
    // One worker and a deep queue: the cold solve is slow, so every
    // pipelined duplicate arrives (and is parsed, on the reactor thread,
    // in one pass) long before the leader's solve completes.
    let (server, client) = boot(ServeConfig {
        max_concurrent_solves: 1,
        solve_queue_depth: 16,
        ..ServeConfig::default()
    });
    let n = 6;
    let body = r#"{"max_rules": 4}"#;
    let mut conn = client.connect().unwrap();
    let requests: Vec<(&str, &str, Option<&str>)> =
        (0..n).map(|_| ("POST", "/v1/solve", Some(body))).collect();
    let responses = conn.pipeline(&requests).unwrap();

    assert_eq!(responses.len(), n);
    for response in &responses {
        assert_eq!(response.status, 200, "{}", response.body);
        // Bit-identity: the fan-out duplicates the leader's encoded report
        // byte for byte.
        assert_eq!(
            response.body.as_bytes(),
            responses[0].body.as_bytes(),
            "coalesced responses must be byte-identical"
        );
    }
    assert!(!rule_strings(&Json::parse(&responses[0].body).unwrap()).is_empty());

    // Exactly one underlying solve served all N requests.
    assert_eq!(metric(&client, "sessions.so.solves_ok"), 1.0);
    assert_eq!(
        metric(&client, "sessions.so.solves_coalesced"),
        (n - 1) as f64
    );
    assert_eq!(metric(&client, "requests.coalesce_hits"), (n - 1) as f64);
    // Delivered-response accounting still counts every waiter.
    assert_eq!(metric(&client, "requests.solves_ok"), n as f64);
    assert_eq!(metric(&client, "admission.coalesce_in_flight"), 0.0);
    server.shutdown();
}

#[test]
fn waiter_disconnect_does_not_cancel_the_shared_solve() {
    // This test needs the cold solve to outlast two 50 ms sleeps, so it
    // serves a 15× larger dataset than the other tests (a 2 k-row cold
    // solve can finish in tens of milliseconds in a debug build).
    let ds = faircap::data::so::generate(30_000, 3);
    let keep = ["gdp_group", "age", "certifications", "training", "salary"];
    let df = ds.df.select(&keep).unwrap();
    let dag = Dag::parse_edge_list(
        "gdp_group -> salary\nage -> salary\ncertifications -> salary\ntraining -> salary",
    )
    .unwrap();
    let slow = FairCap::builder()
        .data(df)
        .dag(dag)
        .outcome("salary")
        .immutable(["gdp_group", "age"])
        .mutable(["certifications", "training"])
        .protected(Pattern::of_eq(&[("gdp_group", Value::from("low"))]))
        .build()
        .unwrap();
    let registry = Arc::new(SessionRegistry::new());
    registry.register("so", slow);
    let server = Server::start(
        ServeConfig {
            max_concurrent_solves: 1,
            solve_queue_depth: 16,
            ..ServeConfig::default()
        },
        registry,
    )
    .unwrap();
    let client = server.client();
    client.wait_ready(Duration::from_secs(30)).unwrap();
    let body = r#"{"max_rules": 4}"#;

    // Conn A leads with a cold (slow) solve.
    let survivor = {
        let client = client.clone();
        std::thread::spawn(move || {
            let mut conn = client.connect().unwrap();
            conn.request("POST", "/v1/solve", Some(body)).unwrap()
        })
    };
    std::thread::sleep(Duration::from_millis(50));
    // Conn B attaches the identical request, then disconnects mid-solve.
    let mut deserter = client.connect().unwrap();
    deserter
        .send("POST", "/v1/solve", Some(body), false)
        .unwrap();
    std::thread::sleep(Duration::from_millis(50));
    drop(deserter);

    // The surviving waiter still gets its 200 — the shared solve is owned
    // by the pool, not by any one connection.
    let response = survivor.join().unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    assert!(!rule_strings(&Json::parse(&response.body).unwrap()).is_empty());
    // The duplicate folded: one underlying solve, whichever conn led.
    assert_eq!(metric(&client, "sessions.so.solves_ok"), 1.0);
    assert_eq!(metric(&client, "requests.coalesce_hits"), 1.0);
    server.shutdown();
}

#[test]
fn pipelined_responses_come_back_in_request_order() {
    let (server, client) = boot(ServeConfig::default());
    let mut conn = client.connect().unwrap();
    // A slow solve first, then two instantly-answerable requests: the
    // reactor must hold the quick responses behind the pending solve slot.
    let responses = conn
        .pipeline(&[
            ("POST", "/v1/solve", Some(r#"{"max_rules": 3}"#)),
            ("GET", "/healthz", None),
            ("GET", "/v1/sessions", None),
        ])
        .unwrap();
    assert_eq!(responses.len(), 3);
    assert_eq!(responses[0].status, 200, "{}", responses[0].body);
    assert!(
        responses[0].body.contains("\"rules\""),
        "first response must be the solve report: {}",
        responses[0].body
    );
    assert_eq!(responses[1].status, 200);
    assert!(
        responses[1].body.contains("\"ok\""),
        "second response must be the health check: {}",
        responses[1].body
    );
    assert_eq!(responses[2].status, 200);
    assert!(
        responses[2].body.contains("\"sessions\""),
        "third response must be the session listing: {}",
        responses[2].body
    );
    // The connection is still usable for further exchanges.
    for _ in 0..3 {
        assert_eq!(conn.request("GET", "/healthz", None).unwrap().status, 200);
    }
    server.shutdown();
}

#[test]
fn connection_close_is_honoured_after_the_response() {
    let (server, client) = boot(ServeConfig::default());
    let mut conn = client.connect().unwrap();
    assert_eq!(conn.request("GET", "/healthz", None).unwrap().status, 200);
    // `connection: close` still gets its answer, then EOF.
    conn.send("GET", "/healthz", None, true).unwrap();
    let last = conn.read_response().unwrap();
    assert_eq!(last.status, 200);
    let eof = conn.read_response();
    assert!(
        eof.is_err(),
        "server must close after `connection: close`, got {eof:?}"
    );
    server.shutdown();
}

#[test]
fn idle_timeout_reaps_idle_connections_but_not_in_flight_solves() {
    let idle = Duration::from_millis(250);
    let (server, client) = boot(ServeConfig {
        max_concurrent_solves: 1,
        solve_queue_depth: 16,
        idle_timeout: idle,
        ..ServeConfig::default()
    });

    // A connection with an in-flight cold solve (slow in a debug build,
    // typically well past the idle timeout) must NOT be reaped: the idle
    // clock only applies to connections with no outstanding requests.
    let busy = {
        let client = client.clone();
        std::thread::spawn(move || {
            let mut conn = client.connect().unwrap();
            conn.request("POST", "/v1/solve", Some(r#"{"max_rules": 5}"#))
                .unwrap()
        })
    };

    // Meanwhile an idle keep-alive connection gets reaped.
    let mut lazy = client.connect().unwrap();
    assert_eq!(lazy.request("GET", "/healthz", None).unwrap().status, 200);
    std::thread::sleep(idle + Duration::from_millis(400));
    let outcome = lazy
        .send("GET", "/healthz", None, false)
        .and_then(|()| lazy.read_response());
    assert!(
        outcome.is_err(),
        "idle connection must be closed by the reaper, got {outcome:?}"
    );

    let response = busy.join().unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    server.shutdown();
}

#[test]
fn graceful_drain_finishes_admitted_pipelined_requests() {
    let (server, client) = boot(ServeConfig {
        max_concurrent_solves: 1,
        solve_queue_depth: 16,
        ..ServeConfig::default()
    });
    let body = r#"{"max_rules": 4}"#;
    let mut conn = client.connect().unwrap();
    // Three pipelined requests — a slow cold solve, a quick endpoint, and
    // an identical (coalescing) solve — all written before any response is
    // read, so all are admitted while the leader's solve runs.
    for request in [
        ("POST", "/v1/solve", Some(body)),
        ("GET", "/healthz", None),
        ("POST", "/v1/solve", Some(body)),
    ] {
        conn.send(request.0, request.1, request.2, false).unwrap();
    }
    // Give the reactor a beat to parse and dispatch all three.
    std::thread::sleep(Duration::from_millis(100));

    let reader = std::thread::spawn(move || {
        let responses: Vec<_> = (0..3).map(|_| conn.read_response()).collect();
        let eof = conn.read_response();
        (responses, eof)
    });
    // Drain while the solve is in flight and the pipeline is unanswered.
    server.shutdown();

    let (responses, eof) = reader.join().unwrap();
    let statuses: Vec<_> = responses
        .iter()
        .map(|r| r.as_ref().map(|r| r.status))
        .collect();
    for (i, response) in responses.iter().enumerate() {
        let response = response
            .as_ref()
            .unwrap_or_else(|e| panic!("admitted request {i} dropped during drain: {e}"));
        assert_eq!(response.status, 200, "request {i}: {statuses:?}");
    }
    assert!(responses[0].as_ref().unwrap().body.contains("\"rules\""));
    assert_eq!(
        responses[0].as_ref().unwrap().body,
        responses[2].as_ref().unwrap().body,
        "the coalesced duplicate drains with the leader's bytes"
    );
    // After the last admitted response the drained connection closes.
    assert!(
        eof.is_err(),
        "connection must close after drain, got {eof:?}"
    );
    assert!(client.get("/healthz").is_err(), "listener must be gone");
}

/// Open-loop overload soak at roughly 10× serving capacity, driven by the
/// scenario workload replayer. Long and load-bearing on wall-clock, so it
/// is `#[ignore]`d in the default CI tier; run with `--ignored`.
#[test]
#[ignore = "soak test: run explicitly with cargo test -- --ignored"]
fn overload_soak_sheds_cleanly_and_never_drops_admitted_requests() {
    use faircap::scenario::{
        default_epsilon, generate, replay, Arrival, ReplayOptions, ReplayTarget, ScenarioSpec,
        WorkloadMix,
    };
    let spec = ScenarioSpec {
        name: "soak".into(),
        rows: 4_000,
        ..ScenarioSpec::default()
    };
    let sc = generate(&spec).unwrap();
    let registry = Arc::new(SessionRegistry::new());
    registry.register("soak", sc.session().unwrap()).unwrap();
    let queue_depth = 2;
    let server = Server::start(
        ServeConfig {
            max_concurrent_solves: 1,
            solve_queue_depth: queue_depth,
            ..ServeConfig::default()
        },
        registry,
    )
    .unwrap();
    let client = server.client();
    client.wait_ready(Duration::from_secs(30)).unwrap();

    // Open loop far past capacity: a 1-worker server solves well under
    // 50 req/s on this scenario in a debug build; the schedule offers
    // 500/s. The sweep mix with a high cold fraction keeps fingerprints
    // distinct so coalescing cannot flatten the overload.
    let options = ReplayOptions {
        mix: WorkloadMix::preset("sweep", default_epsilon(&spec)).unwrap(),
        arrival: Arrival::Open {
            clients: 32,
            rate_hz: 500.0,
        },
        total: 200,
        cold_fraction: 0.8,
    };
    let target = ReplayTarget::Http {
        client: server.client(),
        session: "soak".into(),
    };
    let report = replay(&target, &options, &spec).unwrap();

    // Every request is answered with a deliberate status: successes and
    // admission-control sheds only — never a transport error, reset, or
    // invalid-request surprise.
    assert_eq!(report.failed_other, 0, "{}", report.summary());
    assert_eq!(report.invalid, 0, "{}", report.summary());
    assert_eq!(
        report.ok + report.rejected_429 + report.rejected_503 + report.timeout_504,
        report.total,
        "{}",
        report.summary()
    );
    assert!(report.ok >= 1, "{}", report.summary());
    assert!(
        report.rejected_429 >= report.total / 4,
        "10× overload must shed hard: {}",
        report.summary()
    );
    // The bounded queue held its bound through the whole soak.
    let high_water = metric(&client, "admission.max_queue_depth");
    assert!(
        high_water <= queue_depth as f64,
        "queue high-water {high_water} exceeded bound {queue_depth}"
    );
    // Connection accounting stayed consistent under churn.
    let accepted = metric(&client, "connections.accepted");
    let closed = metric(&client, "connections.closed");
    assert!(accepted >= report.total as f64);
    assert!(closed <= accepted);
    server.shutdown();
}
