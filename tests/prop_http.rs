//! Property-based tests for the incremental HTTP/1.1 request parser that
//! the serving reactor feeds with raw socket bytes: arbitrary TCP read
//! fragmentation, pipelined back-to-back requests, oversized and malformed
//! headers, and chunked garbage must never panic or mis-frame.
//!
//! The central invariant is **split independence**: because
//! `parse_request` is a pure function of the accumulated buffer, feeding a
//! byte stream in any fragmentation must yield exactly the requests that
//! parsing the concatenation yields — the reactor's read loop depends on
//! this to be correct under every possible packet boundary.

use faircap::serve::http::{parse_request, ParseError, Parsed, Request};
use proptest::prelude::*;

/// Drain every complete request out of a buffer, exactly like the
/// reactor's parse loop.
fn drain(buf: &mut Vec<u8>) -> Result<Vec<Request>, ParseError> {
    let mut out = Vec::new();
    loop {
        match parse_request(buf)? {
            Parsed::Complete { request, consumed } => {
                buf.drain(..consumed);
                out.push(request);
            }
            Parsed::Partial => return Ok(out),
        }
    }
}

/// Parse a stream delivered in the given fragments, accumulating like the
/// reactor does across socket reads.
fn parse_fragmented(stream: &[u8], cuts: &[usize]) -> Result<Vec<Request>, ParseError> {
    let mut buf = Vec::new();
    let mut requests = Vec::new();
    let mut at = 0;
    for &cut in cuts {
        let cut = cut.min(stream.len());
        if cut > at {
            buf.extend_from_slice(&stream[at..cut]);
            at = cut;
            requests.extend(drain(&mut buf)?);
        }
    }
    buf.extend_from_slice(&stream[at..]);
    requests.extend(drain(&mut buf)?);
    Ok(requests)
}

fn encode_request(method: &str, path: &str, headers: &[(String, String)], body: &[u8]) -> Vec<u8> {
    let mut out = format!("{method} {path} HTTP/1.1\r\n");
    for (name, value) in headers {
        out.push_str(&format!("{name}: {value}\r\n"));
    }
    out.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
    let mut bytes = out.into_bytes();
    bytes.extend_from_slice(body);
    bytes
}

fn method_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("GET".to_string()),
        Just("POST".to_string()),
        Just("PUT".to_string()),
        Just("DELETE".to_string()),
    ]
}

fn path_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("/v1/solve".to_string()),
        Just("/healthz".to_string()),
        "/[a-z]{1,12}",
        "/[a-z]{1,6}/[a-z0-9]{1,8}",
    ]
}

fn header_strategy() -> impl Strategy<Value = (String, String)> {
    (
        prop_oneof![
            "[a-z][a-z-]{0,14}",
            Just("x-request-id".to_string()),
            Just("accept".to_string()),
        ],
        "[ -~]{0,24}",
    )
        .prop_filter("reserved framing headers", |(name, _)| {
            let n = name.to_ascii_lowercase();
            n != "content-length" && n != "transfer-encoding" && n != "connection"
        })
}

fn request_strategy() -> impl Strategy<Value = (String, String, Vec<(String, String)>, Vec<u8>)> {
    (
        method_strategy(),
        path_strategy(),
        prop::collection::vec(header_strategy(), 0..5),
        prop::collection::vec(any::<u8>(), 0..200),
    )
}

proptest! {
    /// parse(concat) == parse(fragments) for arbitrary split points: the
    /// same requests, fields, and bodies come out no matter how the bytes
    /// arrive.
    #[test]
    fn split_independence(
        requests in prop::collection::vec(request_strategy(), 1..4),
        cuts in prop::collection::vec(0usize..4096, 0..12),
    ) {
        let mut stream = Vec::new();
        for (method, path, headers, body) in &requests {
            stream.extend_from_slice(&encode_request(method, path, headers, body));
        }
        let mut sorted_cuts = cuts.clone();
        sorted_cuts.sort_unstable();

        let whole = parse_fragmented(&stream, &[]).expect("well-formed stream parses");
        let split = parse_fragmented(&stream, &sorted_cuts).expect("fragmented stream parses");

        prop_assert_eq!(whole.len(), requests.len());
        prop_assert_eq!(split.len(), whole.len());
        for ((got_whole, got_split), (method, path, _, body)) in
            whole.iter().zip(&split).zip(&requests)
        {
            prop_assert_eq!(&got_whole.method, method);
            prop_assert_eq!(&got_whole.path, path);
            prop_assert_eq!(&got_whole.body, body);
            prop_assert_eq!(&got_split.method, &got_whole.method);
            prop_assert_eq!(&got_split.path, &got_whole.path);
            prop_assert_eq!(&got_split.body, &got_whole.body);
            prop_assert_eq!(got_split.keep_alive, got_whole.keep_alive);
            prop_assert_eq!(got_split.headers.len(), got_whole.headers.len());
        }
    }

    /// Every single-byte split point of a pipelined two-request stream
    /// yields the same parse — the exhaustive version of the invariant for
    /// the boundary the reactor actually hits most (one request ending
    /// inside one read, the next beginning in it).
    #[test]
    fn every_split_point_of_a_pipelined_pair(
        first in request_strategy(),
        second in request_strategy(),
    ) {
        let (m1, p1, h1, b1) = first;
        let (m2, p2, h2, b2) = second;
        let mut stream = encode_request(&m1, &p1, &h1, &b1);
        stream.extend_from_slice(&encode_request(&m2, &p2, &h2, &b2));
        let whole = parse_fragmented(&stream, &[]).expect("parses");
        prop_assert_eq!(whole.len(), 2);
        for cut in 0..=stream.len() {
            let split = parse_fragmented(&stream, &[cut]).expect("parses at every cut");
            prop_assert_eq!(split.len(), 2, "cut at {}", cut);
            for (a, b) in whole.iter().zip(&split) {
                prop_assert_eq!(&a.method, &b.method);
                prop_assert_eq!(&a.path, &b.path);
                prop_assert_eq!(&a.body, &b.body);
            }
        }
    }

    /// Arbitrary garbage must never panic: every outcome (partial,
    /// complete, error) is acceptable, crashing is not. Errors must be
    /// sticky enough for the reactor's answer-and-close handling: a
    /// malformed prefix keeps erroring as more bytes arrive.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let _ = parse_request(&bytes);
        // Feeding the same bytes incrementally must not panic either.
        let mut buf = Vec::new();
        for chunk in bytes.chunks(17) {
            buf.extend_from_slice(chunk);
            if drain(&mut buf).is_err() {
                break;
            }
        }
    }

    /// Chunked transfer encoding is out of scope for this server and must
    /// be rejected cleanly (never mis-framed as an empty-body request with
    /// trailing garbage).
    #[test]
    fn chunked_garbage_is_rejected_not_misframed(chunks in prop::collection::vec("[0-9a-f]{1,4}", 1..5)) {
        let mut stream = b"POST /v1/solve HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n".to_vec();
        for chunk in &chunks {
            stream.extend_from_slice(chunk.as_bytes());
            stream.extend_from_slice(b"\r\nXXXX\r\n");
        }
        stream.extend_from_slice(b"0\r\n\r\n");
        prop_assert!(matches!(parse_request(&stream), Err(ParseError::Malformed(_))));
    }

    /// Oversized header lines are rejected even before their terminator
    /// arrives (header-flood defense), and the rejection is stable across
    /// fragmentation.
    #[test]
    fn oversized_header_line_rejected_at_any_fragmentation(extra in 1usize..64, cut in 0usize..9000) {
        let mut stream = b"GET / HTTP/1.1\r\nx-flood: ".to_vec();
        stream.extend(std::iter::repeat_n(b'a', 8 * 1024 + extra));
        // No terminator: a parser that waits for \r\n before checking the
        // limit would buffer unboundedly.
        let whole = parse_request(&stream);
        prop_assert!(matches!(whole, Err(ParseError::Malformed(_))), "{whole:?}");
        let result = parse_fragmented(&stream, &[cut.min(stream.len())]);
        prop_assert!(result.is_err());
    }

    /// Declared bodies above the limit answer 413-style errors instead of
    /// buffering; conflicting duplicate content-lengths are malformed.
    #[test]
    fn body_limits_and_conflicting_lengths(over in 1u64..1024, a in 0u64..100, delta in 1u64..100) {
        let too_big = format!(
            "POST /v1/solve HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            faircap::serve::http::MAX_BODY as u64 + over
        );
        prop_assert!(matches!(
            parse_request(too_big.as_bytes()),
            Err(ParseError::BodyTooLarge(_))
        ));
        let conflicting = format!(
            "POST / HTTP/1.1\r\ncontent-length: {a}\r\ncontent-length: {}\r\n\r\n",
            a + delta
        );
        prop_assert!(matches!(
            parse_request(conflicting.as_bytes()),
            Err(ParseError::Malformed(_))
        ));
    }
}
