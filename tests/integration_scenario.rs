//! Scale-harness integration tests for `faircap-scenario`: the planted
//! ground truth is actually recovered by the adjusted estimators at
//! benchmark sizes, the unadjusted estimate is provably biased (the
//! confounding has teeth), covariate-free matching refuses
//! scenario-scale groups through its brute-force pair budget (the
//! KD-tree index keeps the adjusted runs inside it), generation is
//! bit-reproducible at 10⁵ rows, and the
//! replayer drives a real served instance end to end.

use faircap::causal::{estimate_cate, CausalError, EstimatorKind};
use faircap::core::SessionRegistry;
use faircap::scenario::{
    check_recovery, default_epsilon, generate, naive_bias, replay, Arrival, RecoveryOptions,
    ReplayOptions, ReplayTarget, ScenarioSpec, TruthGroup, WorkloadMix,
};
use faircap::serve::{ServeConfig, Server};
use faircap::table::{Pattern, Value};
use std::sync::Arc;
use std::time::Duration;

/// Big enough that the recovery tolerance (1.0 + 4·se) is a real test and
/// the matching budget trips; small enough for a debug-profile test run.
fn scale_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "itest".into(),
        rows: 20_000,
        ..ScenarioSpec::default()
    }
}

#[test]
fn adjusted_estimators_recover_planted_truth_at_scale() {
    let sc = generate(&scale_spec()).unwrap();
    let checks = check_recovery(&sc, &RecoveryOptions::default()).unwrap();
    // flexible × {protected, non-protected, all}
    //          × {stratified, ipw, aipw, matching}.
    assert_eq!(checks.len(), sc.spec.flexible * 3 * 4);
    let failures: Vec<String> = checks
        .iter()
        .filter(|c| !c.pass)
        .map(|c| c.to_string())
        .collect();
    assert!(failures.is_empty(), "{failures:#?}");
}

#[test]
fn unadjusted_estimate_is_provably_biased() {
    let sc = generate(&scale_spec()).unwrap();
    for treatment in &sc.dataset.mutable {
        let r = naive_bias(&sc, treatment).unwrap();
        assert!(
            r.biased(1.0, 4.0),
            "difference-in-means on {treatment} should be confounded: {r}"
        );
    }
}

#[test]
fn matching_budget_refuses_covariate_free_scenario_groups() {
    // With covariates the KD-tree index now carries scenario-scale groups
    // within budget (asserted by the recovery test above), so the refusal
    // path is exercised where the tree genuinely cannot help: an empty
    // adjustment set has no matching dimensions, the brute-force pair
    // scan is the only path, and 40 000 rows with treated fractions in
    // the generator's [0.2, 0.8] band mean at least
    // 8 000 × 32 000 = 2.56·10⁸ pair distances — over the 2·10⁸ default
    // budget, so matching must refuse with the typed error instead of
    // grinding quadratically.
    let sc = generate(&ScenarioSpec {
        rows: 40_000,
        ..scale_spec()
    })
    .unwrap();
    let treated = Pattern::of_eq(&[("f0", Value::from("yes"))])
        .coverage(&sc.dataset.df)
        .unwrap();
    let err = estimate_cate(
        EstimatorKind::Matching,
        &sc.dataset.df,
        &sc.group_mask(TruthGroup::All),
        &treated,
        &sc.dataset.outcome,
        &[],
    )
    .unwrap_err();
    match err {
        CausalError::EstimatorBudget { work, budget, .. } => {
            assert!(work > budget, "{work} vs {budget}")
        }
        other => panic!("expected EstimatorBudget, got {other}"),
    }
}

#[test]
fn generation_is_bit_reproducible_at_benchmark_scale() {
    let spec = ScenarioSpec {
        rows: 100_000,
        ..ScenarioSpec::default()
    };
    let a = generate(&spec).unwrap();
    let b = generate(&spec).unwrap();
    assert_eq!(a.fingerprint(), b.fingerprint());
    // The planted truth is closed-form — identical across re-generations
    // by construction, not by sampling luck.
    assert_eq!(a.truth, b.truth);
}

#[test]
fn replayer_drives_a_served_scenario_end_to_end() {
    let spec = ScenarioSpec {
        name: "served".into(),
        rows: 4_000,
        ..ScenarioSpec::default()
    };
    let sc = generate(&spec).unwrap();
    let registry = Arc::new(SessionRegistry::new());
    registry
        .register("syn", sc.session().unwrap())
        .expect("fresh registry");
    let server = Server::start(
        ServeConfig {
            max_concurrent_solves: 2,
            solve_queue_depth: 64,
            ..ServeConfig::default()
        },
        registry,
    )
    .expect("ephemeral port");
    let client = server.client();
    client.wait_ready(Duration::from_secs(30)).unwrap();

    let options = ReplayOptions {
        mix: WorkloadMix::preset("sweep", default_epsilon(&spec)).unwrap(),
        arrival: Arrival::Closed { clients: 2 },
        total: 10,
        cold_fraction: 0.2,
    };
    let target = ReplayTarget::Http {
        client,
        session: "syn".into(),
    };
    let report = replay(&target, &options, &spec).unwrap();
    assert_eq!(report.ok, 10, "{}", report.summary());
    assert_eq!(report.rows, 4_000);
    assert_eq!(report.seed, 7);
    assert!(
        report.cache_hits + report.cache_misses > 0,
        "server-side cache counters must flow into the report: {}",
        report.summary()
    );
    // A misrouted session yields zero successes, not a false benchmark.
    let lost = ReplayTarget::Http {
        client: server.client(),
        session: "no-such-session".into(),
    };
    let report = replay(&lost, &options, &spec).unwrap();
    assert_eq!(report.ok, 0, "{}", report.summary());
    server.shutdown();
}
