//! Integration tests for the `PrescriptionSession` engine API on the
//! German Credit stand-in: one session re-solved under three fairness
//! constraints must (a) produce identical rulesets whether Step 2 runs
//! serially or on the work-stealing executor and (b) perform no redundant
//! CATE estimation on the repeat solves (asserted via the engine's
//! cache-hit counters).

use faircap::core::{FairCapConfig, FairnessConstraint, FairnessScope, SolutionReport};
use faircap::data::{german, Dataset};
use faircap::{FairCap, PrescriptionSession, SolveRequest};

fn dataset() -> Dataset {
    german::generate(1_500, 42)
}

fn session(ds: &Dataset) -> PrescriptionSession {
    FairCap::builder()
        .data(ds.df.clone())
        .dag(ds.dag.clone())
        .outcome(&ds.outcome)
        .immutable(ds.immutable.iter().cloned())
        .mutable(ds.mutable.iter().cloned())
        .protected(ds.protected.clone())
        .build()
        .expect("German Credit stand-in is a valid problem instance")
}

/// The three fairness regimes of the study: unconstrained, group
/// statistical parity, group bounded group loss.
fn fairness_variants() -> [FairnessConstraint; 3] {
    [
        FairnessConstraint::None,
        FairnessConstraint::StatisticalParity {
            scope: FairnessScope::Group,
            epsilon: 0.05,
        },
        FairnessConstraint::BoundedGroupLoss {
            scope: FairnessScope::Group,
            tau: 0.05,
        },
    ]
}

fn fingerprint(report: &SolutionReport) -> (Vec<String>, String) {
    (
        report.rules.iter().map(|r| r.to_string()).collect(),
        format!("{:?}", report.summary),
    )
}

/// Work-stealing parallel Step 2 must be invisible in the output: for every
/// fairness regime, the parallel solve (at several worker counts) produces
/// exactly the serial solve's ruleset. (This replaced the retired one-shot
/// `run()` shim's compatibility test.)
#[test]
fn serial_and_parallel_solves_agree_across_constraints() {
    let ds = dataset();
    let s = session(&ds);
    for fairness in fairness_variants() {
        let serial = s
            .solve(&SolveRequest::from(FairCapConfig {
                fairness,
                parallel: false,
                ..FairCapConfig::default()
            }))
            .expect("valid request");
        assert!(serial.exec.is_none(), "serial solve reports no exec stats");
        for workers in [1, 3, 7] {
            let parallel = s
                .solve(&SolveRequest::default().fairness(fairness).workers(workers))
                .expect("valid request");
            assert_eq!(
                fingerprint(&parallel),
                fingerprint(&serial),
                "serial and {workers}-worker solves disagree under {fairness:?}"
            );
            if parallel.n_grouping_patterns >= 2 {
                let stats = parallel.exec.as_ref().expect("parallel run has stats");
                assert_eq!(stats.tasks, parallel.n_grouping_patterns);
                assert_eq!(
                    stats.tasks_per_worker.iter().sum::<usize>(),
                    stats.tasks,
                    "every task unit is executed exactly once"
                );
            }
        }
    }
}

#[test]
fn second_and_third_solves_reuse_cached_estimates() {
    let s = session(&dataset());
    let [unconstrained, sp, bgl] = fairness_variants();

    let first = s
        .solve(&SolveRequest::default().fairness(unconstrained))
        .expect("valid request");
    assert!(!first.rules.is_empty(), "baseline solve finds rules");
    let after_first = s.cache_stats();
    assert!(after_first.misses > 0, "first solve estimates from scratch");

    let second = s
        .solve(&SolveRequest::default().fairness(sp))
        .expect("valid request");
    let after_second = s.cache_stats();
    assert_eq!(
        after_second.misses, after_first.misses,
        "second solve (new fairness constraint) must perform no redundant CATE estimation"
    );
    assert_eq!(
        after_second.hits, after_first.hits,
        "constraint-only re-solve is served by the intervention cache \
         without any estimate-cache traffic"
    );
    let interventions_after_second = s.intervention_cache_stats();
    assert!(
        interventions_after_second.hits > 0,
        "second solve must reuse cached intervention evaluations"
    );

    let third = s
        .solve(&SolveRequest::default().fairness(bgl))
        .expect("valid request");
    let after_third = s.cache_stats();
    assert_eq!(
        after_third.misses, after_second.misses,
        "third solve must also perform no redundant CATE estimation"
    );
    assert!(s.intervention_cache_stats().hits > interventions_after_second.hits);

    // The constraints actually bind: the SP solve is at least as fair as
    // the unconstrained one, and never beats it on utility.
    assert!(second.summary.unfairness.abs() <= first.summary.unfairness.abs() + 1e-9);
    assert!(second.summary.expected <= first.summary.expected + 1e-9);
    assert!(third.summary.expected <= first.summary.expected + 1e-9);
}

#[test]
fn estimator_change_estimates_fresh_but_constraint_change_does_not() {
    use faircap::causal::EstimatorKind;
    let s = session(&dataset());
    s.solve(&SolveRequest::default()).expect("valid request");
    let after_linear = s.cache_stats();

    // Different estimator → new cache namespace → fresh estimations.
    s.solve(&SolveRequest::default().estimator_kind(EstimatorKind::Stratified))
        .expect("valid request");
    let after_strat = s.cache_stats();
    assert!(
        after_strat.misses > after_linear.misses,
        "a new estimator cannot reuse another estimator's estimates"
    );

    // Re-solving either estimator again is pure cache traffic.
    s.solve(&SolveRequest::default()).expect("valid request");
    s.solve(&SolveRequest::default().estimator_kind(EstimatorKind::Stratified))
        .expect("valid request");
    assert_eq!(s.cache_stats().misses, after_strat.misses);
}

#[test]
fn session_is_usable_from_multiple_threads() {
    let s = std::sync::Arc::new(session(&dataset()));
    let [_, sp, bgl] = fairness_variants();
    let mut handles = Vec::new();
    for fairness in [sp, bgl] {
        let s = std::sync::Arc::clone(&s);
        handles.push(std::thread::spawn(move || {
            s.solve(&SolveRequest::default().fairness(fairness))
                .expect("valid request")
                .summary
        }));
    }
    let concurrent: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Same answers as sequential solves on a fresh session.
    let fresh = session(&dataset());
    for (fairness, summary) in [sp, bgl].into_iter().zip(concurrent) {
        let sequential = fresh
            .solve(&SolveRequest::default().fairness(fairness))
            .expect("valid request");
        assert_eq!(sequential.summary, summary);
    }
}
