//! Integration tests for the §8 cost extension: budget-constrained and
//! cost-penalized intervention mining on the Stack Overflow stand-in.

use faircap::core::{CostModel, CostPolicy, FairCapConfig, SolutionReport};
use faircap::data::{so, Dataset};
use faircap::table::Value;
use faircap::{FairCap, PrescriptionSession, SolveRequest};

fn session(ds: &Dataset) -> PrescriptionSession {
    FairCap::builder()
        .data(ds.df.clone())
        .dag(ds.dag.clone())
        .outcome(&ds.outcome)
        .immutable(ds.immutable.iter().cloned())
        .mutable(ds.mutable.iter().cloned())
        .protected(ds.protected.clone())
        .build()
        .expect("generated dataset is a valid problem instance")
}

fn solve(s: &PrescriptionSession, cfg: FairCapConfig) -> SolutionReport {
    s.solve(&SolveRequest::from(cfg)).expect("config is valid")
}

/// Education is expensive, everything else cheap — the §8 motivating case
/// ("pursuing a bachelor's degree … versus learning Python").
fn education_heavy_costs() -> CostModel {
    CostModel::with_default(1.0)
        .set("education", Value::from("phd"), 50.0)
        .set("education", Value::from("master"), 30.0)
        .set("education", Value::from("bachelor"), 20.0)
        .set_attribute("dev_role", 5.0)
}

#[test]
fn budget_excludes_expensive_interventions() {
    let ds = so::generate(6_000, 42);
    let cfg = FairCapConfig {
        cost_model: education_heavy_costs(),
        cost_policy: CostPolicy::Budget {
            max_rule_cost: 10.0,
        },
        ..FairCapConfig::default()
    };
    let report = solve(&session(&ds), cfg);
    assert!(!report.rules.is_empty());
    let model = education_heavy_costs();
    for r in &report.rules {
        let cost = model.pattern_cost(&r.intervention);
        assert!(cost <= 10.0, "rule {} costs {cost} > budget", r);
        // in particular: no education-based prescriptions at this budget
        assert!(
            !r.intervention.to_string().contains("education"),
            "education interventions cost ≥ 20: {}",
            r.intervention
        );
    }
}

#[test]
fn tight_budget_costs_utility() {
    let ds = so::generate(6_000, 42);
    let s = session(&ds);
    let unconstrained = solve(&s, FairCapConfig::default());
    let cfg = FairCapConfig {
        cost_model: education_heavy_costs(),
        cost_policy: CostPolicy::Budget { max_rule_cost: 2.0 },
        ..FairCapConfig::default()
    };
    let cheap = solve(&s, cfg);
    assert!(
        cheap.summary.expected <= unconstrained.summary.expected + 1e-9,
        "budget {} should not beat unconstrained {}",
        cheap.summary.expected,
        unconstrained.summary.expected
    );
}

#[test]
fn penalty_shifts_to_cost_effective_rules() {
    let ds = so::generate(6_000, 42);
    let model = education_heavy_costs();
    let s = session(&ds);
    let baseline = solve(&s, FairCapConfig::default());
    let cfg = FairCapConfig {
        cost_model: education_heavy_costs(),
        cost_policy: CostPolicy::Penalize { weight: 1.0 },
        ..FairCapConfig::default()
    };
    let penalized = solve(&s, cfg);
    assert!(!penalized.rules.is_empty());
    let avg_cost = |rules: &[faircap::core::Rule]| -> f64 {
        rules
            .iter()
            .map(|r| model.pattern_cost(&r.intervention))
            .sum::<f64>()
            / rules.len().max(1) as f64
    };
    assert!(
        avg_cost(&penalized.rules) <= avg_cost(&baseline.rules) + 1e-9,
        "penalized rules should be cheaper on average: {} vs {}",
        avg_cost(&penalized.rules),
        avg_cost(&baseline.rules)
    );
}

#[test]
fn zero_cost_model_is_a_noop() {
    let ds = so::generate(4_000, 7);
    let s = session(&ds);
    let plain = solve(&s, FairCapConfig::default());
    let cfg = FairCapConfig {
        cost_model: CostModel::default(), // all-zero costs
        cost_policy: CostPolicy::Penalize { weight: 10.0 },
        ..FairCapConfig::default()
    };
    let costed = solve(&s, cfg);
    let a: Vec<String> = plain.rules.iter().map(|r| r.to_string()).collect();
    let b: Vec<String> = costed.rules.iter().map(|r| r.to_string()).collect();
    assert_eq!(a, b, "zero costs must not change the solution");
}

#[test]
fn infeasible_budget_yields_empty_solution() {
    let ds = so::generate(4_000, 7);
    let cfg = FairCapConfig {
        cost_model: CostModel::with_default(100.0),
        cost_policy: CostPolicy::Budget { max_rule_cost: 1.0 },
        ..FairCapConfig::default()
    };
    let report = solve(&session(&ds), cfg);
    assert!(report.rules.is_empty());
}
