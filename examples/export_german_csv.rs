//! Materialize the German Credit stand-in as CSV + DAG files for the
//! `faircap` CLI — what the CI snapshot round-trip job feeds to
//! `--save-cache` / `--load-cache`.
//!
//! ```sh
//! cargo run --release --example export_german_csv -- target/german-export
//! ```
//!
//! Writes `german.csv` and `german.dag` into the given directory (default
//! `target/german-export`) and prints a ready-to-run CLI command line.

use faircap::data::german;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/german-export".into());
    let dir = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&dir)?;

    let ds = german::generate(german::GERMAN_DEFAULT_ROWS, 42);
    let csv_path = dir.join("german.csv");
    let dag_path = dir.join("german.dag");
    faircap::table::csv::write_csv(&ds.df, &csv_path)?;
    // The CLI's edge-list parser accepts this tool's own DOT output.
    std::fs::write(&dag_path, ds.dag.to_dot())?;

    let protected: Vec<String> = ds
        .protected
        .predicates()
        .iter()
        .map(|p| format!("{}={}", p.attr, p.value))
        .collect();
    println!(
        "wrote {} ({} rows) and {}",
        csv_path.display(),
        ds.df.n_rows(),
        dag_path.display()
    );
    println!(
        "faircap --data {} --dag {} --outcome {} --mutable {} --protected {}",
        csv_path.display(),
        dag_path.display(),
        ds.outcome,
        ds.mutable.join(","),
        protected.join(",")
    );
    Ok(())
}
