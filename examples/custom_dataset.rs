//! Bring your own data: run FairCap on a CSV file with a hand-written
//! causal DAG — the adoption path for real datasets.
//!
//! ```sh
//! cargo run --release --example custom_dataset
//! ```
//!
//! For the demo we first export a sample of the synthetic survey to a CSV
//! (pretend this file came from your data warehouse), then load it back,
//! declare a causal DAG and the mutable/immutable split by hand, and solve.

use faircap::causal::Dag;
use faircap::core::{FairCapConfig, FairnessConstraint, FairnessScope};
use faircap::table::{csv, Pattern, Value};
use faircap::{FairCap, SolveRequest};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 0. Materialize "your" CSV (stand-in for a real export). ---
    let dir = std::env::temp_dir().join("faircap_custom_dataset");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("employees.csv");
    let sample = faircap::data::so::generate(8_000, 123);
    let keep: Vec<&str> = vec![
        "age",
        "gdp_group",
        "years_coding",
        "education",
        "dev_role",
        "certifications",
        "salary",
    ];
    csv::write_csv(&sample.df.select(&keep)?, &path)?;
    println!("wrote {}", path.display());

    // --- 1. Load the CSV (types are inferred). ---
    let df = csv::read_csv(&path)?;
    println!("loaded {} rows × {} columns", df.n_rows(), df.n_cols());

    // --- 2. Declare the causal DAG (domain knowledge). ---
    let mut dag = Dag::new();
    for (from, to) in [
        ("age", "years_coding"),
        ("age", "education"),
        ("age", "salary"),
        ("gdp_group", "education"),
        ("gdp_group", "salary"),
        ("years_coding", "dev_role"),
        ("years_coding", "salary"),
        ("education", "dev_role"),
        ("education", "certifications"),
        ("education", "salary"),
        ("dev_role", "salary"),
        ("certifications", "salary"),
    ] {
        dag.add_edge_by_name(from, to)?;
    }

    // --- 3. Declare the problem: outcome, I/M split, protected group. ---
    let protected = Pattern::of_eq(&[("gdp_group", Value::from("low"))]);

    // The builder validates everything up front: misspell a column or point
    // the outcome at a categorical and you get a typed faircap::Error here.
    let session = FairCap::builder()
        .data(df)
        .dag(dag)
        .outcome("salary")
        .immutable(["age", "gdp_group", "years_coding"])
        .mutable(["education", "dev_role", "certifications"])
        .protected(protected)
        .build()?;

    // --- 4. Solve with group SP fairness. ---
    let cfg = FairCapConfig {
        fairness: FairnessConstraint::StatisticalParity {
            scope: FairnessScope::Group,
            epsilon: 10_000.0,
        },
        ..FairCapConfig::default()
    };
    let report = session.solve(&SolveRequest::from(cfg))?;
    println!("\n{report}");
    println!("{}", report.rule_cards());
    Ok(())
}
