//! Quickstart: run FairCap on the bundled Stack Overflow stand-in.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Generates the synthetic survey (38 K rows), then solves the Prescription
//! Ruleset Selection problem twice — unconstrained and with group
//! statistical-parity fairness (ε = $10 k) + group coverage (θ = θ_p = 0.5),
//! the headline configuration of the paper — and prints both rulesets.

use faircap::core::{
    run, CoverageConstraint, FairCapConfig, FairnessConstraint, FairnessScope, ProblemInput,
    SolutionReport,
};
use faircap::data::so;

fn main() {
    println!("Generating the synthetic Stack Overflow survey (38k rows)...");
    let ds = so::generate(so::SO_DEFAULT_ROWS, 42);
    println!(
        "  {} rows, {} attributes ({} immutable / {} mutable), protected = {} ({:.1}%)\n",
        ds.df.n_rows(),
        ds.attributes().len(),
        ds.immutable.len(),
        ds.mutable.len(),
        ds.protected,
        ds.protected_fraction() * 100.0
    );

    let input = ProblemInput {
        df: &ds.df,
        dag: &ds.dag,
        outcome: &ds.outcome,
        immutable: &ds.immutable,
        mutable: &ds.mutable,
        protected: &ds.protected,
    };

    // --- Variant 1: no constraints (CauSumX-like behaviour). ---
    let unconstrained = run(&input, &FairCapConfig::default());
    print_report("No constraints", &unconstrained);

    // --- Variant 2: group SP fairness + group coverage (paper defaults). ---
    let cfg = FairCapConfig {
        fairness: FairnessConstraint::StatisticalParity {
            scope: FairnessScope::Group,
            epsilon: 10_000.0,
        },
        coverage: CoverageConstraint::Group {
            theta: 0.5,
            theta_protected: 0.5,
        },
        ..FairCapConfig::default()
    };
    let fair = run(&input, &cfg);
    print_report("Group SP (ε=$10k) + group coverage (θ=0.5)", &fair);

    println!("==> Takeaway (the paper's Table 4 phenomenon):");
    println!(
        "    fairness cut unfairness from {:.0} to {:.0} at a cost of {:.0} expected utility.",
        unconstrained.summary.unfairness,
        fair.summary.unfairness,
        unconstrained.summary.expected - fair.summary.expected
    );
}

fn print_report(title: &str, report: &SolutionReport) {
    println!("=== {title} ===");
    println!("{report}");
    println!("{}", report.rule_cards());
    println!(
        "timings: grouping {:?}, intervention mining {:?}, greedy {:?}\n",
        report.timings.grouping, report.timings.intervention, report.timings.greedy
    );
}
