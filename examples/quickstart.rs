//! Quickstart: the FairCap session engine on the bundled Stack Overflow
//! stand-in.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Generates the synthetic survey (38 K rows), builds one
//! [`PrescriptionSession`] via `FairCap::builder()`, then solves the same
//! instance twice — unconstrained and with group statistical-parity
//! fairness (ε = $10 k) + group coverage (θ = θ_p = 0.5), the headline
//! configuration of the paper — and prints both rulesets. The second solve
//! reuses every CATE estimate the first one computed; the cache counters at
//! the end show it.

use faircap::core::{CoverageConstraint, FairnessConstraint, FairnessScope, SolutionReport};
use faircap::data::so;
use faircap::{FairCap, SolveRequest};

fn main() -> Result<(), faircap::Error> {
    println!("Generating the synthetic Stack Overflow survey (38k rows)...");
    let ds = so::generate(so::SO_DEFAULT_ROWS, 42);
    println!(
        "  {} rows, {} attributes ({} immutable / {} mutable), protected = {} ({:.1}%)\n",
        ds.df.n_rows(),
        ds.attributes().len(),
        ds.immutable.len(),
        ds.mutable.len(),
        ds.protected,
        ds.protected_fraction() * 100.0
    );

    // Build (and validate) the session once. Bad input — a missing column,
    // a categorical outcome, an outcome absent from the DAG — comes back as
    // a typed `faircap::Error` here, never as a panic mid-solve.
    let session = FairCap::builder()
        .data(ds.df)
        .dag(ds.dag)
        .outcome(ds.outcome)
        .immutable(ds.immutable)
        .mutable(ds.mutable)
        .protected(ds.protected)
        .build()?;

    // --- Solve 1: no constraints (CauSumX-like behaviour). ---
    let unconstrained = session.solve(&SolveRequest::default())?;
    print_report("No constraints", &unconstrained);

    // --- Solve 2: group SP fairness + group coverage (paper defaults). ---
    // Same session: only the constraints change, so every CATE estimate is
    // served from the engine cache.
    let request = SolveRequest::default()
        .fairness(FairnessConstraint::StatisticalParity {
            scope: FairnessScope::Group,
            epsilon: 10_000.0,
        })
        .coverage(CoverageConstraint::Group {
            theta: 0.5,
            theta_protected: 0.5,
        });
    let fair = session.solve(&request)?;
    print_report("Group SP (ε=$10k) + group coverage (θ=0.5)", &fair);

    println!("==> Takeaway (the paper's Table 4 phenomenon):");
    println!(
        "    fairness cut unfairness from {:.0} to {:.0} at a cost of {:.0} expected utility.",
        unconstrained.summary.unfairness,
        fair.summary.unfairness,
        unconstrained.summary.expected - fair.summary.expected
    );
    let stats = session.cache_stats();
    println!(
        "==> Session cache: {} CATE estimations total, {} queries answered from cache.",
        stats.misses, stats.hits
    );
    Ok(())
}

fn print_report(title: &str, report: &SolutionReport) {
    println!("=== {title} ===");
    println!("{report}");
    println!("{}", report.rule_cards());
    println!(
        "timings: grouping {:?}, intervention mining {:?}, greedy {:?}\n",
        report.timings.grouping, report.timings.intervention, report.timings.greedy
    );
}
