//! Budget-constrained prescriptions — the paper's §8 future-work extension.
//!
//! ```sh
//! cargo run --release --example budget_prescriptions
//! ```
//!
//! §8 motivates intervention costs: "some interventions may be impractical
//! or vary significantly in cost (e.g., moving to the US versus learning
//! Python)". This example assigns costs to the Stack Overflow mutable
//! attributes and compares three policies: ignore costs (the published
//! algorithm), a hard per-rule budget, and cost-effectiveness ranking.

use faircap::core::{CostModel, CostPolicy, FairCapConfig, SolutionReport};
use faircap::data::so;
use faircap::table::Value;
use faircap::{FairCap, SolveRequest};

fn main() -> Result<(), faircap::Error> {
    let ds = so::generate(12_000, 42);
    // One session across the three cost policies: only the config changes,
    // so the CATE estimates are shared.
    let session = FairCap::builder()
        .data(ds.df)
        .dag(ds.dag)
        .outcome(ds.outcome)
        .immutable(ds.immutable)
        .mutable(ds.mutable)
        .protected(ds.protected)
        .build()?;

    // Cost units ≈ "effort years". Degrees are expensive; habits are cheap.
    let costs = || {
        CostModel::with_default(1.0)
            .set("education", Value::from("bachelor"), 16.0)
            .set("education", Value::from("master"), 22.0)
            .set("education", Value::from("phd"), 40.0)
            .set("undergrad_major", Value::from("cs"), 16.0)
            .set_attribute("dev_role", 6.0)
            .set_attribute("computer_hours", 0.5)
            .set_attribute("languages_count", 2.0)
            .set_attribute("certifications", 1.5)
            .set_attribute("open_source", 1.0)
            .set_attribute("training", 0.5)
    };

    let policies: Vec<(&str, CostPolicy)> = vec![
        ("ignore costs (published algorithm)", CostPolicy::Ignore),
        (
            "hard budget: ≤ 8 effort-years per rule",
            CostPolicy::Budget { max_rule_cost: 8.0 },
        ),
        (
            "cost-effectiveness (benefit / (1 + 0.2·cost))",
            CostPolicy::Penalize { weight: 0.2 },
        ),
    ];

    let model = costs();
    for (title, cost_policy) in policies {
        let cfg = FairCapConfig {
            cost_model: costs(),
            cost_policy,
            ..FairCapConfig::default()
        };
        let report = session.solve(&SolveRequest::from(cfg))?;
        println!("=== {title} ===");
        summarize(&report, &model);
    }
    Ok(())
}

fn summarize(report: &SolutionReport, model: &CostModel) {
    let avg_cost = if report.rules.is_empty() {
        0.0
    } else {
        report
            .rules
            .iter()
            .map(|r| model.pattern_cost(&r.intervention))
            .sum::<f64>()
            / report.rules.len() as f64
    };
    println!(
        "{} rules, exp utility {:.0}, avg intervention cost {:.1}",
        report.size(),
        report.summary.expected,
        avg_cost
    );
    for r in report.rules.iter().take(3) {
        println!(
            "  {} (utility {:.0}, cost {:.1})",
            r,
            r.utility.overall,
            model.pattern_cost(&r.intervention)
        );
    }
    println!();
}
