//! Case study (paper §6, Stack Overflow): how different fairness constraints
//! change the selected prescription rules.
//!
//! ```sh
//! cargo run --release --example stackoverflow_study
//! ```
//!
//! Reproduces the structure of the paper's three rule boxes: rules chosen
//! under group SP fairness, under individual SP fairness, and with no
//! fairness constraint — showing rules that favor the protected group, the
//! non-protected group, and balanced ones.

use faircap::core::{FairnessConstraint, FairnessScope, SolutionReport};
use faircap::data::so;
use faircap::{FairCap, SolveRequest};

fn main() -> Result<(), faircap::Error> {
    let ds = so::generate(so::SO_DEFAULT_ROWS, 42);
    // One session, three fairness regimes — the recourse-under-changing-
    // constraints workload the session API is built for.
    let session = FairCap::builder()
        .data(ds.df)
        .dag(ds.dag)
        .outcome(ds.outcome)
        .immutable(ds.immutable)
        .mutable(ds.mutable)
        .protected(ds.protected)
        .build()?;

    let configs: Vec<(&str, FairnessConstraint)> = vec![
        (
            "SP group fairness (ε=$10k)",
            FairnessConstraint::StatisticalParity {
                scope: FairnessScope::Group,
                epsilon: 10_000.0,
            },
        ),
        (
            "SP individual fairness (ε=$10k)",
            FairnessConstraint::StatisticalParity {
                scope: FairnessScope::Individual,
                epsilon: 10_000.0,
            },
        ),
        ("no fairness constraints", FairnessConstraint::None),
    ];

    for (title, fairness) in configs {
        let report = session.solve(&SolveRequest::default().fairness(fairness))?;
        println!("=== Selected rules for SO ({title}) ===");
        println!("{report}");
        print_selected(&report);
        println!();
    }

    println!("Paper §6 shape: under group fairness the set mixes rules favoring");
    println!("each side; under individual fairness every rule is near-parity but");
    println!("overall utility is lower; without fairness the rules favor the");
    println!("non-protected group heavily.");
    let stats = session.cache_stats();
    println!(
        "(session cache over the three regimes: {} hits / {} estimations)",
        stats.hits, stats.misses
    );
    Ok(())
}

/// Print up to three illustrative rules: most protected-favoring, most
/// non-protected-favoring, and most balanced (as the paper's boxes do).
fn print_selected(report: &SolutionReport) {
    if report.rules.is_empty() {
        println!("  (no rules selected)");
        return;
    }
    let by_gap = |r: &faircap::core::Rule| r.utility.non_protected - r.utility.protected;
    let favors_protected = report
        .rules
        .iter()
        .min_by(|a, b| by_gap(a).total_cmp(&by_gap(b)))
        .unwrap();
    let favors_non_protected = report
        .rules
        .iter()
        .max_by(|a, b| by_gap(a).total_cmp(&by_gap(b)))
        .unwrap();
    let balanced = report
        .rules
        .iter()
        .min_by(|a, b| by_gap(a).abs().total_cmp(&by_gap(b).abs()))
        .unwrap();
    for (tag, rule) in [
        ("favors non-protected", favors_non_protected),
        ("balanced           ", balanced),
        ("favors protected   ", favors_protected),
    ] {
        println!(
            "  [{tag}] {}\n      exp utility protected: {:.0}, non-protected: {:.0}",
            rule, rule.utility.protected, rule.utility.non_protected
        );
    }
}
