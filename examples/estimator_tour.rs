//! Tour of the pluggable CATE estimators: one German-credit session,
//! re-solved under every built-in estimator — linear, stratified, IPW,
//! doubly-robust AIPW, and k-NN matching — with per-estimator cache stats.
//!
//! ```sh
//! cargo run --release --example estimator_tour
//! ```
//!
//! See `docs/estimators.md` for what each estimator assumes and when the
//! doubly robust one is worth its extra cost.

use faircap::causal::{Estimator, EstimatorKind};
use faircap::data::german;
use faircap::{FairCap, SolveRequest};

fn main() -> Result<(), faircap::Error> {
    let ds = german::generate(german::GERMAN_DEFAULT_ROWS, 42);
    println!(
        "German Credit stand-in: {} rows, protected = {}\n",
        ds.df.n_rows(),
        ds.protected
    );
    // One validated session serves the whole sweep; only the estimator
    // changes per request, so grouping patterns, adjustment sets, and
    // treated masks are all computed once.
    let session = FairCap::builder()
        .data(ds.df)
        .dag(ds.dag)
        .outcome(ds.outcome)
        .immutable(ds.immutable)
        .mutable(ds.mutable)
        .protected(ds.protected)
        .build()?;

    for kind in EstimatorKind::ALL {
        let report = session.solve(&SolveRequest::default().estimator_kind(kind))?;
        println!(
            "=== {:<10} === {} rules, expected {:.4}, unfairness {:.4}",
            kind.name(),
            report.size(),
            report.summary.expected,
            report.summary.unfairness
        );
        if let Some(rule) = report.rules.first() {
            println!("    top rule: {rule}");
        }
    }

    // Each estimator has its own cache scope: the hit/miss counters below
    // are keyed by estimator name, so a sweep can see exactly how much
    // estimation work each estimator performed.
    println!("\nPer-estimator cache stats:");
    for (name, stats) in session.cache_stats_by_estimator() {
        println!(
            "  {:<10} hits {:>5}  misses {:>5}  entries {:>5}",
            name, stats.hits, stats.misses, stats.entries
        );
    }
    Ok(())
}
