//! Tour of the paper's Figure 2 decision tree: walk all nine structural
//! constraint variants on a small Stack Overflow sample and compare the
//! solutions side by side.
//!
//! ```sh
//! cargo run --release --example variant_tour
//! ```

use faircap::core::{
    all_structural_variants, choose_variant, FairnessKind, SolutionReport, VariantAnswers,
};
use faircap::data::so;
use faircap::{FairCap, SolveRequest};

fn main() -> Result<(), faircap::Error> {
    // Use a smaller sample so the tour finishes quickly.
    let ds = so::generate(8_000, 42);
    let session = FairCap::builder()
        .data(ds.df)
        .dag(ds.dag)
        .outcome(ds.outcome)
        .immutable(ds.immutable)
        .mutable(ds.mutable)
        .protected(ds.protected)
        .build()?;

    // First, the interactive view: one walk through the decision tree.
    println!("Figure 2 walk-through: \"I need group-level fairness and a");
    println!("whole-ruleset coverage guarantee\" leads to:");
    let answers = VariantAnswers {
        wants_fairness: true,
        group_fairness: true,
        kind: FairnessKind::StatisticalParity,
        threshold: 10_000.0,
        wants_coverage: true,
        per_rule_coverage: false,
        theta: 0.5,
        theta_protected: 0.5,
    };
    let (fairness, coverage) = choose_variant(&answers);
    println!("  fairness  = {}", fairness.label());
    println!("  coverage  = {}\n", coverage.label());

    // Then all nine leaves, as the paper's Table 4 enumerates them.
    println!("All nine structural variants (SP, ε=$10k, θ=θp=0.5), 8k-row sample:");
    println!("{}", SolutionReport::table_header());
    for (label, fairness, coverage) in
        all_structural_variants(FairnessKind::StatisticalParity, 10_000.0, 0.5, 0.5)
    {
        let mut report = session.solve(
            &SolveRequest::default()
                .fairness(fairness)
                .coverage(coverage),
        )?;
        report.label = label;
        println!("{}", report.table_row());
    }
    let stats = session.cache_stats();
    println!(
        "\n(nine variants, one session: {} cache hits / {} estimations)",
        stats.hits, stats.misses
    );
    Ok(())
}
