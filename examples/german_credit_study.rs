//! Case study (paper §6, German Credit): bounded-group-loss fairness on a
//! binary outcome.
//!
//! ```sh
//! cargo run --release --example german_credit_study
//! ```

use faircap::core::{CoverageConstraint, FairnessConstraint, FairnessScope};
use faircap::data::german;
use faircap::{FairCap, SolveRequest};

fn main() -> Result<(), faircap::Error> {
    let ds = german::generate(german::GERMAN_DEFAULT_ROWS, 42);
    println!(
        "German Credit stand-in: {} rows, protected = {} ({:.1}%)\n",
        ds.df.n_rows(),
        ds.protected,
        ds.protected_fraction() * 100.0
    );
    let session = FairCap::builder()
        .data(ds.df)
        .dag(ds.dag)
        .outcome(ds.outcome)
        .immutable(ds.immutable)
        .mutable(ds.mutable)
        .protected(ds.protected)
        .build()?;

    // No constraints.
    let unconstrained = session.solve(&SolveRequest::default())?;
    println!("=== No constraints ===\n{unconstrained}");
    println!("{}", unconstrained.rule_cards());

    // Group BGL fairness (τ = 0.1) + group coverage (θ = 0.3), the paper's
    // German defaults — same session, cached estimates.
    let request = SolveRequest::default()
        .fairness(FairnessConstraint::BoundedGroupLoss {
            scope: FairnessScope::Group,
            tau: 0.1,
        })
        .coverage(CoverageConstraint::Group {
            theta: 0.3,
            theta_protected: 0.3,
        });
    let fair = session.solve(&request)?;
    println!("=== Group BGL (τ=0.1) + group coverage (θ=0.3) ===\n{fair}");
    println!("{}", fair.rule_cards());

    println!("Paper §6 shape: BGL only bounds the protected group's expected gain");
    println!("from below, so some protected/non-protected disparity persists even");
    println!("with the constraint active — but the protected floor holds (≥ τ).");
    println!(
        "Measured: protected expected utility {:.3} (τ = 0.1), unfairness {:.3}.",
        fair.summary.expected_protected, fair.summary.unfairness
    );
    Ok(())
}
