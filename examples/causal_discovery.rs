//! Causal-substrate tour: d-separation, backdoor adjustment, CATE
//! estimation against planted ground truth, and PC structure discovery —
//! the machinery behind the paper's Table 6 robustness experiment.
//!
//! ```sh
//! cargo run --release --example causal_discovery
//! ```

use faircap::causal::discovery::{pc_dag, PcConfig};
use faircap::causal::{d_separated_names, find_adjustment_set_names, CateEngine, EstimatorKind};
use faircap::data::{build_dag_variant, so, DagVariant};
use faircap::table::{Mask, Pattern, Value};
use std::sync::Arc;

fn main() {
    let ds = so::generate(10_000, 42);

    // --- 1. The ground-truth DAG and d-separation queries. ---
    println!(
        "Ground-truth SO DAG: {} nodes, {} edges",
        ds.dag.n_nodes(),
        ds.dag.n_edges()
    );
    for (x, y, z) in [
        ("education", "salary", vec![]),
        (
            "age",
            "salary",
            vec![
                "years_coding",
                "education",
                "dependents",
                "student",
                "computer_hours",
            ],
        ),
    ] {
        let sep = d_separated_names(&ds.dag, &[x], &[y], &z.to_vec()).unwrap();
        println!("  {x} ⊥ {y} | {z:?} ?  {sep}");
    }

    // --- 2. Backdoor adjustment sets. ---
    for treatment in ["education", "dev_role", "certifications"] {
        let z = find_adjustment_set_names(&ds.dag, &[treatment], "salary").unwrap();
        println!("adjustment set for {treatment} -> salary: {z:?}");
    }

    // --- 3. Estimators vs planted ground truth. ---
    let df = Arc::new(ds.df.clone());
    let engine = CateEngine::new(Arc::clone(&df), Arc::new(ds.dag.clone()), "salary")
        .expect("salary is a numeric column");
    let nonprot = !&ds.protected_mask();
    let cert = Pattern::of_eq(&[("certifications", Value::from("yes"))]);
    let est = engine
        .cate(&nonprot, &cert, &EstimatorKind::Linear)
        .expect("estimable");
    println!(
        "\ncertifications=yes CATE (non-protected): estimated {:.0}, planted {:.0}",
        est.cate,
        so::CERTIFICATIONS_EFFECT.0
    );

    // --- 4. PC discovery on a column subset (full 21 columns is slow). ---
    let sub: Vec<String> = ["age", "years_coding", "education", "dev_role", "salary"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let discovered = pc_dag(&ds.df, &sub, PcConfig::default()).unwrap();
    println!("\nPC-discovered DAG over {sub:?}:");
    print!("{}", discovered.to_dot());

    // --- 5. The Table 6 DAG variants. ---
    println!("\nTable 6 DAG variants (node/edge counts):");
    for variant in [
        DagVariant::Original,
        DagVariant::OneLayerIndep,
        DagVariant::TwoLayerMutable,
        DagVariant::TwoLayer,
    ] {
        let dag = build_dag_variant(&ds, variant);
        println!(
            "  {:<22} {:>3} nodes {:>4} edges",
            variant.label(),
            dag.n_nodes(),
            dag.n_edges()
        );
    }

    // --- 6. Estimate robustness: same query under two DAG variants. ---
    let one_layer = build_dag_variant(&ds, DagVariant::OneLayerIndep);
    let naive_engine = CateEngine::new(Arc::clone(&df), Arc::new(one_layer), "salary")
        .expect("salary is a numeric column");
    let naive = naive_engine
        .cate(&Mask::ones(ds.df.n_rows()), &cert, &EstimatorKind::Linear)
        .expect("estimable");
    let adjusted = engine
        .cate(&Mask::ones(ds.df.n_rows()), &cert, &EstimatorKind::Linear)
        .expect("estimable");
    println!(
        "\ncertifications CATE, whole population: 1-layer DAG (no adjustment) {:.0} vs original DAG {:.0}",
        naive.cate, adjusted.cate
    );
    println!("(education confounds certifications, so the unadjusted estimate is inflated)");
}
