//! # faircap
//!
//! Facade crate for the FairCap workspace — a from-scratch Rust
//! reproduction of *“Fair and Actionable Causal Prescription Ruleset”*
//! (SIGMOD 2025). Re-exports every layer:
//!
//! * [`table`] — columnar frames, bitset masks, conjunctive patterns, CSV,
//!   statistics.
//! * [`causal`] — causal DAGs, d-separation, backdoor adjustment, CATE
//!   estimation, PC discovery, SCM sampling.
//! * [`mining`] — Apriori and the positive-parent lattice.
//! * [`core`] — the FairCap algorithm, constraints, and reports.
//! * [`baselines`] — CauSumX / IDS / FRL and the IF-clause adaptations.
//! * [`data`] — synthetic Stack Overflow and German Credit stand-ins.
//!
//! See the [README](https://github.com/faircap/faircap-rs) and the
//! runnable examples (`cargo run --release --example quickstart`).

#![warn(missing_docs)]

pub mod cli;

pub use faircap_baselines as baselines;
pub use faircap_causal as causal;
pub use faircap_core as core;
pub use faircap_data as data;
pub use faircap_mining as mining;
pub use faircap_table as table;
