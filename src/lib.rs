//! # faircap
//!
//! Facade crate for the FairCap workspace — a from-scratch Rust
//! reproduction of *“Fair and Actionable Causal Prescription Ruleset”*
//! (SIGMOD 2025).
//!
//! ## The session engine API
//!
//! The entry point is [`FairCap::builder`]: validate a Prescription Ruleset
//! Selection instance once, get a long-lived [`PrescriptionSession`], and
//! re-solve it under changing fairness/coverage constraints, estimators,
//! and rule budgets. Every cross-solve cache (backdoor adjustment sets,
//! treated-row masks, CATE estimates, grouping patterns) lives on the
//! session, so constraint sweeps — the paper's Tables 4–6 workload — pay
//! for estimation once:
//!
//! ```no_run
//! use faircap::{FairCap, SolveRequest};
//! use faircap::core::{FairnessConstraint, FairnessScope};
//! use faircap::data::so;
//!
//! let ds = so::generate(10_000, 42);
//! let session = FairCap::builder()
//!     .data(ds.df)
//!     .dag(ds.dag)
//!     .outcome(ds.outcome)
//!     .immutable(ds.immutable)
//!     .mutable(ds.mutable)
//!     .protected(ds.protected)
//!     .build()?; // typed faircap::Error on any invalid input — never a panic
//!
//! let unconstrained = session.solve(&SolveRequest::default())?;
//! let fair = session.solve(&SolveRequest::default().fairness(
//!     FairnessConstraint::StatisticalParity { scope: FairnessScope::Group, epsilon: 10_000.0 },
//! ))?; // no new CATE estimation: the first solve warmed the caches
//! println!("{unconstrained}\n{fair}");
//! println!("cache: {:?}", session.cache_stats());
//! # Ok::<(), faircap::Error>(())
//! ```
//!
//! Estimators are pluggable per request: `SolveRequest::estimator` takes
//! any `Arc<dyn Estimator>`, and five built-ins ship in
//! [`causal::EstimatorKind`] — `linear`, `stratified`, `ipw`, the doubly
//! robust `aipw`, and k-NN `matching`; `docs/estimators.md` documents
//! their assumptions and trade-offs, and cache statistics are reported per
//! estimator name via [`PrescriptionSession::cache_stats_by_estimator`].
//!
//! ## Execution and caching layer
//!
//! Step 2's fan-out runs on a work-stealing executor
//! ([`core::exec`]) — worker count set per request
//! (`SolveRequest::workers`) or via `FAIRCAP_WORKERS` — with per-solve
//! scheduling statistics on `SolutionReport::exec`. The estimate and
//! grouping caches are sharded, LRU-bounded maps
//! ([`table::cache::ShardedLruCache`]; bounds via
//! `SolveRequest::estimate_cache_bound` / `grouping_cache_bound`), and a
//! session's warmed caches persist across processes:
//! [`PrescriptionSession::snapshot`] serializes them to a versioned format
//! and `FairCap::builder().warm_start(snapshot)` restores them, so a
//! restarted server re-solves with zero new estimations (CLI:
//! `--save-cache` / `--load-cache`). `docs/architecture.md` describes the
//! layer in full. (The pre-0.2 one-shot `run()` shim has been removed;
//! see `docs/building.md` for the migration.)
//!
//! ## Serving front end
//!
//! [`serve`] (`faircap serve` on the CLI) wraps a [`core::SessionRegistry`]
//! of warm sessions in a dependency-free HTTP/1.1 server with real
//! admission control: a bounded solve queue (overflow answers 429), a
//! max-concurrent-solves budget, per-request timeouts (504), live
//! `/v1/metrics` (cache counters per estimator, executor stats, latency
//! percentiles, queue depth), snapshot persistence over `POST
//! /v1/snapshot`, warm boot from a snapshot directory, and graceful
//! drain on shutdown. Endpoint schemas are documented in
//! `docs/serving.md`; the JSON wire format lives in [`core::wire`], and
//! rulesets served over HTTP are bit-identical to direct
//! [`PrescriptionSession::solve`] calls.
//!
//! ## Layers
//!
//! * [`table`] — columnar frames, bitset masks, conjunctive patterns, CSV,
//!   statistics.
//! * [`causal`] — causal DAGs, d-separation, backdoor adjustment, CATE
//!   estimation, PC discovery, SCM sampling.
//! * [`mining`] — Apriori and the positive-parent lattice.
//! * [`core`] — the FairCap algorithm, the session engine, constraints, and
//!   reports.
//! * [`baselines`] — CauSumX / IDS / FRL and the IF-clause adaptations
//!   (session-based entry points).
//! * [`data`] — synthetic Stack Overflow and German Credit stand-ins.
//! * [`scenario`] — SCM-driven scenario generation with planted
//!   ground-truth CATEs and the closed/open-loop workload replayer
//!   (`faircap gen` / `faircap replay`; see `docs/scenarios.md`).
//!
//! See the [README](https://github.com/faircap/faircap-rs), the estimator
//! guide in `docs/estimators.md`, the build notes in `docs/building.md`,
//! and the runnable examples (`cargo run --release --example quickstart`,
//! `--example estimator_tour`).

#![warn(missing_docs)]

pub mod cli;

pub use faircap_baselines as baselines;
pub use faircap_causal as causal;
pub use faircap_core as core;
pub use faircap_data as data;
pub use faircap_mining as mining;
pub use faircap_obs as obs;
pub use faircap_scenario as scenario;
pub use faircap_serve as serve;
pub use faircap_table as table;

pub use faircap_causal::Estimator;
pub use faircap_core::{Error, FairCap, PrescriptionSession, SessionBuilder, SolveRequest};
