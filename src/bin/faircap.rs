//! The `faircap` command-line tool: run Prescription Ruleset Selection on a
//! CSV file with a user-supplied causal DAG.
//!
//! ```sh
//! cargo run --release --bin faircap -- --help
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match faircap::cli::parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(if msg == faircap::cli::USAGE { 0 } else { 2 });
        }
    };
    match faircap::cli::execute(&opts) {
        Ok(report) => {
            println!("{report}");
            print!("{}", report.rule_cards());
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
