//! The `faircap` command-line tool: run Prescription Ruleset Selection on a
//! CSV file with a user-supplied causal DAG, or serve it over HTTP.
//!
//! ```sh
//! cargo run --release --bin faircap -- --help          # one-shot solve
//! cargo run --release --bin faircap -- serve --help    # HTTP front end
//! ```
//!
//! Exit codes: 0 success, 2 configuration error (bad flags or inputs),
//! 1 runtime error (a solve or the server failing after a valid start).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        _ => solve(&args),
    }
}

/// Exit for an argument-parsing result: `--help` prints usage and exits 0,
/// anything else is a configuration error (exit 2).
fn usage_exit(msg: String, usage: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(if msg == usage { 0 } else { 2 });
}

fn solve(args: &[String]) {
    let opts = match faircap::cli::parse_args(args) {
        Ok(o) => o,
        Err(msg) => usage_exit(msg, faircap::cli::USAGE),
    };
    match faircap::cli::execute(&opts) {
        Ok(report) => {
            println!("{report}");
            print!("{}", report.rule_cards());
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    }
}

fn serve(args: &[String]) {
    let opts = match faircap::cli::parse_serve_args(args) {
        Ok(o) => o,
        Err(msg) => usage_exit(msg, faircap::cli::SERVE_USAGE),
    };
    if let Err(e) = faircap::cli::run_serve(&opts) {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    }
}
