//! The `faircap` command-line tool: run Prescription Ruleset Selection on a
//! CSV file with a user-supplied causal DAG, serve it over HTTP, or run the
//! synthetic-scale harness.
//!
//! ```sh
//! cargo run --release --bin faircap -- --help          # one-shot solve
//! cargo run --release --bin faircap -- serve --help    # HTTP front end
//! cargo run --release --bin faircap -- gen --help      # scenario generator
//! cargo run --release --bin faircap -- replay --help   # workload replayer
//! ```
//!
//! Exit codes: 0 success, 2 configuration error (bad flags or inputs),
//! 1 runtime error (a solve, the server, a recovery gate, or a replay
//! failing after a valid start).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("gen") => gen(&args[1..]),
        Some("replay") => replay(&args[1..]),
        _ => solve(&args),
    }
}

/// Exit for an argument-parsing result: `--help` prints usage and exits 0,
/// anything else is a configuration error (exit 2).
fn usage_exit(msg: String, usage: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(if msg == usage { 0 } else { 2 });
}

fn solve(args: &[String]) {
    let opts = match faircap::cli::parse_args(args) {
        Ok(o) => o,
        Err(msg) => usage_exit(msg, faircap::cli::USAGE),
    };
    match faircap::cli::execute(&opts) {
        Ok(report) => {
            println!("{report}");
            print!("{}", report.rule_cards());
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    }
}

fn serve(args: &[String]) {
    let opts = match faircap::cli::parse_serve_args(args) {
        Ok(o) => o,
        Err(msg) => usage_exit(msg, faircap::cli::SERVE_USAGE),
    };
    if let Err(e) = faircap::cli::run_serve(&opts) {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    }
}

fn gen(args: &[String]) {
    let opts = match faircap::cli::parse_gen_args(args) {
        Ok(o) => o,
        Err(msg) => usage_exit(msg, faircap::cli::GEN_USAGE),
    };
    if let Err(e) = faircap::cli::run_gen(&opts) {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    }
}

fn replay(args: &[String]) {
    let opts = match faircap::cli::parse_replay_args(args) {
        Ok(o) => o,
        Err(msg) => usage_exit(msg, faircap::cli::REPLAY_USAGE),
    };
    if let Err(e) = faircap::cli::run_replay(&opts) {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    }
}
