//! Argument parsing and orchestration for the `faircap` command-line tool.
//!
//! Kept in the library so the parsing logic is unit-testable; the binary in
//! `src/bin/faircap.rs` is a thin wrapper.

use faircap_causal::{Dag, Estimator, EstimatorKind};
use faircap_core::{
    CoverageConstraint, FairCap, FairCapConfig, FairnessConstraint, FairnessScope, SessionSnapshot,
    SolutionReport, SolveRequest,
};
use faircap_table::{csv, DataFrame, Pattern, Predicate, Value};

/// Parsed command-line options.
#[derive(Debug, Clone, Default)]
pub struct CliOptions {
    /// CSV file with the data.
    pub data: String,
    /// Edge-list / DOT file with the causal DAG.
    pub dag: String,
    /// Outcome attribute.
    pub outcome: String,
    /// Comma-separated mutable attributes; all other non-outcome columns
    /// are treated as immutable.
    pub mutable: Vec<String>,
    /// Protected-group predicates `attr=value`, comma-separated.
    pub protected: Vec<(String, String)>,
    /// Fairness spec: `none`, `sp-group:EPS`, `sp-individual:EPS`,
    /// `bgl-group:TAU`, `bgl-individual:TAU`.
    pub fairness: String,
    /// Coverage spec: `none`, `group:THETA:THETA_P`, `rule:THETA:THETA_P`.
    pub coverage: String,
    /// Estimator: `linear`, `stratified`, `ipw`, `aipw`, `matching`.
    pub estimator: String,
    /// Maximum rules to select.
    pub max_rules: usize,
    /// Step-2 executor worker count (`None` = `FAIRCAP_WORKERS` env, then
    /// `available_parallelism`).
    pub workers: Option<usize>,
    /// Write the session's cache snapshot here after solving.
    pub save_cache: Option<String>,
    /// Warm-start the session from a snapshot file before solving.
    pub load_cache: Option<String>,
}

/// Usage text printed on `--help` or parse errors.
pub const USAGE: &str = "\
faircap — fair and actionable causal prescription rulesets

USAGE:
  faircap --data FILE.csv --dag DAG.txt --outcome COL \\
          --mutable a,b,c --protected attr=value[,attr=value] \\
          [--fairness sp-group:10000] [--coverage group:0.5:0.5] \\
          [--estimator linear|stratified|ipw|aipw|matching] [--max-rules 20] \\
          [--workers N] [--save-cache FILE] [--load-cache FILE]

The DAG file holds one `parent -> child` edge per line (DOT output of this
tool's own Dag type is accepted). Fairness: none | sp-group:EPS |
sp-individual:EPS | bgl-group:TAU | bgl-individual:TAU. Coverage:
none | group:THETA:THETA_P | rule:THETA:THETA_P. Estimators are documented
in docs/estimators.md.

--workers pins the Step-2 fan-out worker count (default: FAIRCAP_WORKERS,
then all cores). --save-cache writes the warmed CATE caches (adjustment
sets, treated masks, estimates) to a versioned snapshot after solving;
--load-cache warm-starts from one, so an identical re-solve performs zero
new estimations. Either flag makes the tool print an `estimate-cache:` line
with the solve's hit/miss counters.";

/// Parse CLI arguments (without the program name).
pub fn parse_args(args: &[String]) -> Result<CliOptions, String> {
    let mut opts = CliOptions {
        fairness: "none".into(),
        coverage: "none".into(),
        estimator: "linear".into(),
        max_rules: 20,
        ..CliOptions::default()
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(USAGE.to_owned());
        }
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--data" => opts.data = value()?,
            "--dag" => opts.dag = value()?,
            "--outcome" => opts.outcome = value()?,
            "--mutable" => {
                opts.mutable = value()?
                    .split(',')
                    .map(|s| s.trim().to_owned())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--protected" => {
                for pair in value()?.split(',') {
                    let (attr, v) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("--protected needs attr=value, got `{pair}`"))?;
                    opts.protected
                        .push((attr.trim().to_owned(), v.trim().to_owned()));
                }
            }
            "--fairness" => opts.fairness = value()?,
            "--coverage" => opts.coverage = value()?,
            "--estimator" => opts.estimator = value()?,
            "--max-rules" => {
                opts.max_rules = value()?.parse().map_err(|e| format!("--max-rules: {e}"))?
            }
            "--workers" => {
                opts.workers = Some(value()?.parse().map_err(|e| format!("--workers: {e}"))?)
            }
            "--save-cache" => opts.save_cache = Some(value()?),
            "--load-cache" => opts.load_cache = Some(value()?),
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    for (name, val) in [
        ("--data", &opts.data),
        ("--dag", &opts.dag),
        ("--outcome", &opts.outcome),
    ] {
        if val.is_empty() {
            return Err(format!("{name} is required\n\n{USAGE}"));
        }
    }
    if opts.mutable.is_empty() {
        return Err(format!("--mutable is required\n\n{USAGE}"));
    }
    if opts.protected.is_empty() {
        return Err(format!("--protected is required\n\n{USAGE}"));
    }
    Ok(opts)
}

/// Translate the fairness spec string into a constraint.
pub fn parse_fairness(spec: &str) -> Result<FairnessConstraint, String> {
    if spec == "none" {
        return Ok(FairnessConstraint::None);
    }
    let (kind, threshold) = spec
        .split_once(':')
        .ok_or_else(|| format!("fairness spec `{spec}` needs KIND:THRESHOLD"))?;
    let threshold: f64 = threshold
        .parse()
        .map_err(|e| format!("fairness threshold: {e}"))?;
    let scope = |s: &str| {
        if s.ends_with("group") {
            FairnessScope::Group
        } else {
            FairnessScope::Individual
        }
    };
    match kind {
        "sp-group" | "sp-individual" => Ok(FairnessConstraint::StatisticalParity {
            scope: scope(kind),
            epsilon: threshold,
        }),
        "bgl-group" | "bgl-individual" => Ok(FairnessConstraint::BoundedGroupLoss {
            scope: scope(kind),
            tau: threshold,
        }),
        other => Err(format!("unknown fairness kind `{other}`")),
    }
}

/// Translate the coverage spec string into a constraint.
pub fn parse_coverage(spec: &str) -> Result<CoverageConstraint, String> {
    if spec == "none" {
        return Ok(CoverageConstraint::None);
    }
    let parts: Vec<&str> = spec.split(':').collect();
    if parts.len() != 3 {
        return Err(format!("coverage spec `{spec}` needs KIND:THETA:THETA_P"));
    }
    let theta: f64 = parts[1].parse().map_err(|e| format!("theta: {e}"))?;
    let theta_protected: f64 = parts[2].parse().map_err(|e| format!("theta_p: {e}"))?;
    match parts[0] {
        "group" => Ok(CoverageConstraint::Group {
            theta,
            theta_protected,
        }),
        "rule" => Ok(CoverageConstraint::Rule {
            theta,
            theta_protected,
        }),
        other => Err(format!("unknown coverage kind `{other}`")),
    }
}

/// Translate the estimator spec string; accepts every built-in estimator
/// by its stable name (`linear`, `stratified`, `ipw`, `aipw`, `matching`).
pub fn parse_estimator(spec: &str) -> Result<EstimatorKind, String> {
    EstimatorKind::parse(spec).ok_or_else(|| {
        let known: Vec<&str> = EstimatorKind::ALL.iter().map(|k| k.name()).collect();
        format!(
            "unknown estimator `{spec}` (expected one of: {})",
            known.join(", ")
        )
    })
}

/// Build the protected pattern, inferring value types from the frame.
pub fn protected_pattern(df: &DataFrame, pairs: &[(String, String)]) -> Result<Pattern, String> {
    let mut preds = Vec::with_capacity(pairs.len());
    for (attr, raw) in pairs {
        let col = df
            .column(attr)
            .map_err(|e| format!("protected attribute: {e}"))?;
        let value = match col.data_type() {
            faircap_table::DataType::Int => Value::Int(
                raw.parse::<i64>()
                    .map_err(|e| format!("protected value for {attr}: {e}"))?,
            ),
            faircap_table::DataType::Float => Value::Float(
                raw.parse::<f64>()
                    .map_err(|e| format!("protected value for {attr}: {e}"))?,
            ),
            faircap_table::DataType::Bool => Value::Bool(raw == "true"),
            faircap_table::DataType::Cat => Value::from(raw.as_str()),
        };
        preds.push(Predicate::eq(attr, value));
    }
    Ok(Pattern::new(preds))
}

/// Load inputs and run FairCap according to the options.
///
/// Builds a [`FairCap`] session — all input validation (missing columns,
/// ill-typed outcome, outcome absent from the DAG, role conflicts) surfaces
/// as the session builder's typed errors, rendered as strings for the CLI.
///
/// `--load-cache` warm-starts the session from a snapshot file before
/// solving; `--save-cache` persists the warmed caches afterwards. When
/// either is given, the solve's estimate-cache counters are printed (the
/// CI snapshot round-trip job asserts `misses=0` on a warm re-solve).
pub fn execute(opts: &CliOptions) -> Result<SolutionReport, String> {
    let df = csv::read_csv(&opts.data).map_err(|e| format!("reading {}: {e}", opts.data))?;
    let dag_text =
        std::fs::read_to_string(&opts.dag).map_err(|e| format!("reading {}: {e}", opts.dag))?;
    let dag = Dag::parse_edge_list(&dag_text).map_err(|e| format!("parsing DAG: {e}"))?;
    let immutable: Vec<String> = df
        .names()
        .iter()
        .filter(|c| **c != opts.outcome && !opts.mutable.contains(c))
        .cloned()
        .collect();
    let protected = protected_pattern(&df, &opts.protected)?;
    let cfg = FairCapConfig {
        fairness: parse_fairness(&opts.fairness)?,
        coverage: parse_coverage(&opts.coverage)?,
        estimator: parse_estimator(&opts.estimator)?,
        max_rules: opts.max_rules,
        ..FairCapConfig::default()
    };
    let mut builder = FairCap::builder()
        .data(df)
        .dag(dag)
        .outcome(&opts.outcome)
        .immutable(immutable)
        .mutable(opts.mutable.iter().cloned())
        .protected(protected);
    if let Some(path) = &opts.load_cache {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("reading cache {path}: {e}"))?;
        let snapshot = SessionSnapshot::decode(&text).map_err(|e| e.to_string())?;
        builder = builder.warm_start(snapshot);
    }
    let session = builder.build().map_err(|e| e.to_string())?;
    let mut request = SolveRequest::from(cfg);
    request.workers = opts.workers;
    let report = session.solve(&request).map_err(|e| e.to_string())?;
    if let Some(path) = &opts.save_cache {
        std::fs::write(path, session.snapshot().encode())
            .map_err(|e| format!("writing cache {path}: {e}"))?;
    }
    if opts.save_cache.is_some() || opts.load_cache.is_some() {
        let stats = session.cache_stats();
        println!(
            "estimate-cache: hits={} misses={} entries={} evictions={}",
            stats.hits, stats.misses, stats.entries, stats.evictions
        );
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_owned()).collect()
    }

    #[test]
    fn parses_full_command_line() {
        let opts = parse_args(&args(
            "--data d.csv --dag g.txt --outcome salary --mutable edu,role \
             --protected gdp=low --fairness sp-group:10000 \
             --coverage group:0.5:0.5 --estimator ipw --max-rules 7",
        ))
        .unwrap();
        assert_eq!(opts.data, "d.csv");
        assert_eq!(opts.mutable, vec!["edu", "role"]);
        assert_eq!(opts.protected, vec![("gdp".into(), "low".into())]);
        assert_eq!(opts.max_rules, 7);
        assert!(matches!(
            parse_fairness(&opts.fairness).unwrap(),
            FairnessConstraint::StatisticalParity {
                scope: FairnessScope::Group,
                ..
            }
        ));
        assert!(matches!(
            parse_coverage(&opts.coverage).unwrap(),
            CoverageConstraint::Group { .. }
        ));
        assert!(matches!(
            parse_estimator(&opts.estimator).unwrap(),
            EstimatorKind::Ipw
        ));
    }

    #[test]
    fn estimator_spec_variants() {
        assert!(matches!(
            parse_estimator("aipw").unwrap(),
            EstimatorKind::Aipw
        ));
        assert!(matches!(
            parse_estimator("matching").unwrap(),
            EstimatorKind::Matching
        ));
        let err = parse_estimator("dowhy").unwrap_err();
        assert!(err.contains("aipw") && err.contains("matching"), "{err}");
    }

    #[test]
    fn missing_required_flags_rejected() {
        assert!(parse_args(&args("--data d.csv")).is_err());
        assert!(parse_args(&args("--data d.csv --dag g.txt --outcome o --mutable m")).is_err()); // no --protected
        assert!(parse_args(&args("--bogus x")).is_err());
        assert!(parse_args(&args("--data")).is_err()); // dangling value
    }

    #[test]
    fn fairness_spec_variants() {
        assert!(matches!(
            parse_fairness("none").unwrap(),
            FairnessConstraint::None
        ));
        assert!(matches!(
            parse_fairness("bgl-individual:0.1").unwrap(),
            FairnessConstraint::BoundedGroupLoss {
                scope: FairnessScope::Individual,
                ..
            }
        ));
        assert!(parse_fairness("sp-group").is_err());
        assert!(parse_fairness("nope:3").is_err());
        assert!(parse_fairness("sp-group:abc").is_err());
    }

    #[test]
    fn coverage_spec_variants() {
        assert!(matches!(
            parse_coverage("rule:0.3:0.2").unwrap(),
            CoverageConstraint::Rule { theta, theta_protected }
                if theta == 0.3 && theta_protected == 0.2
        ));
        assert!(parse_coverage("group:0.5").is_err());
        assert!(parse_coverage("huh:0.5:0.5").is_err());
    }

    #[test]
    fn protected_pattern_infers_types() {
        let df = DataFrame::builder()
            .cat("city", &["x", "y"])
            .int("tier", vec![1, 2])
            .bool("flag", vec![true, false])
            .build()
            .unwrap();
        let p = protected_pattern(
            &df,
            &[
                ("city".into(), "x".into()),
                ("tier".into(), "2".into()),
                ("flag".into(), "true".into()),
            ],
        )
        .unwrap();
        assert_eq!(p.len(), 3);
        assert!(protected_pattern(&df, &[("ghost".into(), "1".into())]).is_err());
        assert!(protected_pattern(&df, &[("tier".into(), "NaNope".into())]).is_err());
    }

    #[test]
    fn executor_and_cache_flags_parse() {
        let opts = parse_args(&args(
            "--data d.csv --dag g.txt --outcome o --mutable m --protected a=b \
             --workers 6 --save-cache snap.fc --load-cache old.fc",
        ))
        .unwrap();
        assert_eq!(opts.workers, Some(6));
        assert_eq!(opts.save_cache.as_deref(), Some("snap.fc"));
        assert_eq!(opts.load_cache.as_deref(), Some("old.fc"));
        assert!(parse_args(&args(
            "--data d --dag g --outcome o --mutable m --protected a=b --workers many"
        ))
        .is_err());
        // Flags default to off.
        let opts = parse_args(&args(
            "--data d --dag g --outcome o --mutable m --protected a=b",
        ))
        .unwrap();
        assert_eq!(opts.workers, None);
        assert!(opts.save_cache.is_none() && opts.load_cache.is_none());
    }

    #[test]
    fn save_then_load_cache_round_trips_through_files() {
        let dir = std::env::temp_dir().join("faircap_cli_cache_test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("d.csv");
        let dagf = dir.join("g.txt");
        let snap = dir.join("cache.fc");
        let ds = faircap_data::so::generate(2_000, 3);
        let keep = ["gdp_group", "age", "certifications", "training", "salary"];
        faircap_table::csv::write_csv(&ds.df.select(&keep).unwrap(), &data).unwrap();
        std::fs::write(
            &dagf,
            "gdp_group -> salary\nage -> salary\ncertifications -> salary\ntraining -> salary\n",
        )
        .unwrap();
        let base = format!(
            "--data {} --dag {} --outcome salary --mutable certifications,training \
             --protected gdp_group=low --max-rules 5",
            data.display(),
            dagf.display()
        );
        let cold = parse_args(&args(&format!("{base} --save-cache {}", snap.display()))).unwrap();
        let cold_report = execute(&cold).unwrap();
        assert!(snap.exists(), "--save-cache must write the snapshot");
        let warm = parse_args(&args(&format!("{base} --load-cache {}", snap.display()))).unwrap();
        let warm_report = execute(&warm).unwrap();
        let a: Vec<String> = cold_report.rules.iter().map(|r| r.to_string()).collect();
        let b: Vec<String> = warm_report.rules.iter().map(|r| r.to_string()).collect();
        assert_eq!(a, b, "warm CLI solve must reproduce the cold ruleset");
        // A corrupt snapshot is a typed, readable error.
        std::fs::write(&snap, "faircap-snapshot v99\n").unwrap();
        let err = execute(&warm).unwrap_err();
        assert!(err.contains("snapshot"), "{err}");
    }

    #[test]
    fn execute_end_to_end_via_files() {
        // Materialize a tiny CSV + DAG, run the whole CLI path.
        let dir = std::env::temp_dir().join("faircap_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("d.csv");
        let dagf = dir.join("g.txt");
        let ds = faircap_data::so::generate(2_000, 3);
        let keep = ["gdp_group", "age", "certifications", "training", "salary"];
        faircap_table::csv::write_csv(&ds.df.select(&keep).unwrap(), &data).unwrap();
        std::fs::write(
            &dagf,
            "gdp_group -> salary\nage -> salary\ncertifications -> salary\ntraining -> salary\n",
        )
        .unwrap();
        let opts = parse_args(&args(&format!(
            "--data {} --dag {} --outcome salary --mutable certifications,training \
             --protected gdp_group=low --max-rules 5",
            data.display(),
            dagf.display()
        )))
        .unwrap();
        let report = execute(&opts).unwrap();
        assert!(report.size() <= 5);
        assert!(!report.rules.is_empty());
    }
}
