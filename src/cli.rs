//! Argument parsing and orchestration for the `faircap` command-line tool.
//!
//! Kept in the library so the parsing logic is unit-testable; the binary in
//! `src/bin/faircap.rs` is a thin wrapper.
//!
//! Four subcommands:
//!
//! * the default (no subcommand) runs one solve and prints the report;
//! * `faircap serve …` boots the HTTP serving front end
//!   ([`run_serve`], backed by `faircap-serve`) around a long-lived warm
//!   session;
//! * `faircap gen …` samples a synthetic scenario with planted ground-truth
//!   CATEs into a directory ([`run_gen`], backed by `faircap-scenario`),
//!   optionally gating on estimator recovery (`--check`);
//! * `faircap replay …` replays a workload mix against an in-process
//!   session or a running `faircap serve`, appending the report to
//!   `BENCH_scale.json` ([`run_replay`]).
//!
//! Failures are typed ([`CliError`]) so the binary can exit with distinct
//! codes: **2** for configuration problems (bad flags, unreadable inputs,
//! an instance that fails validation), **1** for runtime failures (a solve
//! or the server falling over after a valid start). Engine errors are
//! carried as [`faircap_core::Error`] and rendered through its `Display` —
//! the single formatting path for every engine failure mode.

use faircap_causal::{Dag, Estimator, EstimatorKind};
use faircap_core::{
    CoverageConstraint, FairCap, FairCapConfig, FairnessConstraint, FairnessScope,
    PrescriptionSession, SessionRegistry, SessionSnapshot, SolutionReport, SolveRequest,
    WarmBootInfo,
};
use faircap_scenario::{
    Arrival, RecoveryOptions, ReplayOptions, ReplayTarget, ScenarioSpec, WorkloadMix,
};
use faircap_serve::{ServeConfig, Server};
use faircap_table::{csv, DataFrame, Pattern, Predicate, Value};
use std::time::Duration;

/// A CLI failure with its process exit code.
#[derive(Debug)]
pub enum CliError {
    /// Invalid invocation or problem setup: unknown flags, unreadable
    /// input files, malformed specs, an instance the session builder
    /// refuses. Exit code **2**.
    Config(String),
    /// The engine failed after a valid setup (solve error, serving
    /// failure), carried as the typed [`faircap_core::Error`]. Exit code
    /// **1**.
    Runtime(faircap_core::Error),
    /// A transport/filesystem failure at runtime (writing a snapshot,
    /// serving I/O). Exit code **1**.
    Io(String),
    /// A warm-start snapshot could not be read, decoded, or matched to the
    /// instance. Configuration-class (exit code **2**), but kept distinct
    /// from [`Config`](Self::Config) so the serve warm-boot path can fall
    /// back to a cold boot on snapshot problems *only* — never on broken
    /// data/DAG inputs.
    Snapshot(String),
    /// The `faircap gen --check` recovery gate failed: an adjusted
    /// estimator missed the planted truth, or the unadjusted estimate was
    /// not provably biased. The generated data is still on disk; the gate
    /// judged it. Exit code **1**.
    Check(String),
}

impl CliError {
    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Config(_) | CliError::Snapshot(_) => 2,
            CliError::Runtime(_) | CliError::Io(_) | CliError::Check(_) => 1,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Config(msg)
            | CliError::Io(msg)
            | CliError::Snapshot(msg)
            | CliError::Check(msg) => f.write_str(msg),
            // The typed engine error renders itself; no re-wording here.
            CliError::Runtime(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

/// Parsed command-line options.
#[derive(Debug, Clone, Default)]
pub struct CliOptions {
    /// CSV file with the data.
    pub data: String,
    /// Edge-list / DOT file with the causal DAG.
    pub dag: String,
    /// Outcome attribute.
    pub outcome: String,
    /// Comma-separated mutable attributes; all other non-outcome columns
    /// are treated as immutable.
    pub mutable: Vec<String>,
    /// Protected-group predicates `attr=value`, comma-separated.
    pub protected: Vec<(String, String)>,
    /// Fairness spec: `none`, `sp-group:EPS`, `sp-individual:EPS`,
    /// `bgl-group:TAU`, `bgl-individual:TAU`.
    pub fairness: String,
    /// Coverage spec: `none`, `group:THETA:THETA_P`, `rule:THETA:THETA_P`.
    pub coverage: String,
    /// Estimator: `linear`, `stratified`, `ipw`, `aipw`, `matching`.
    pub estimator: String,
    /// Maximum rules to select.
    pub max_rules: usize,
    /// Step-2 executor worker count (`None` = `FAIRCAP_WORKERS` env, then
    /// `available_parallelism`).
    pub workers: Option<usize>,
    /// Write the session's cache snapshot here after solving.
    pub save_cache: Option<String>,
    /// Warm-start the session from a snapshot file before solving.
    pub load_cache: Option<String>,
}

/// Usage text printed on `--help` or parse errors.
pub const USAGE: &str = "\
faircap — fair and actionable causal prescription rulesets

USAGE:
  faircap --data FILE.csv --dag DAG.txt --outcome COL \\
          --mutable a,b,c --protected attr=value[,attr=value] \\
          [--fairness sp-group:10000] [--coverage group:0.5:0.5] \\
          [--estimator linear|stratified|ipw|aipw|matching] [--max-rules 20] \\
          [--workers N] [--save-cache FILE] [--load-cache FILE]

The DAG file holds one `parent -> child` edge per line (DOT output of this
tool's own Dag type is accepted). Fairness: none | sp-group:EPS |
sp-individual:EPS | bgl-group:TAU | bgl-individual:TAU. Coverage:
none | group:THETA:THETA_P | rule:THETA:THETA_P. Estimators are documented
in docs/estimators.md.

--workers pins the Step-2 fan-out worker count (default: FAIRCAP_WORKERS,
then all cores). --save-cache writes the warmed CATE caches (adjustment
sets, treated masks, estimates) to a versioned snapshot after solving;
--load-cache warm-starts from one, so an identical re-solve performs zero
new estimations. Either flag makes the tool print an `estimate-cache:` line
with the solve's hit/miss counters.";

/// Parse CLI arguments (without the program name).
pub fn parse_args(args: &[String]) -> Result<CliOptions, String> {
    let mut opts = CliOptions {
        fairness: "none".into(),
        coverage: "none".into(),
        estimator: "linear".into(),
        max_rules: 20,
        ..CliOptions::default()
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(USAGE.to_owned());
        }
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--data" => opts.data = value()?,
            "--dag" => opts.dag = value()?,
            "--outcome" => opts.outcome = value()?,
            "--mutable" => {
                opts.mutable = value()?
                    .split(',')
                    .map(|s| s.trim().to_owned())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--protected" => {
                for pair in value()?.split(',') {
                    let (attr, v) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("--protected needs attr=value, got `{pair}`"))?;
                    opts.protected
                        .push((attr.trim().to_owned(), v.trim().to_owned()));
                }
            }
            "--fairness" => opts.fairness = value()?,
            "--coverage" => opts.coverage = value()?,
            "--estimator" => opts.estimator = value()?,
            "--max-rules" => {
                opts.max_rules = value()?.parse().map_err(|e| format!("--max-rules: {e}"))?
            }
            "--workers" => {
                opts.workers = Some(value()?.parse().map_err(|e| format!("--workers: {e}"))?)
            }
            "--save-cache" => opts.save_cache = Some(value()?),
            "--load-cache" => opts.load_cache = Some(value()?),
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    for (name, val) in [
        ("--data", &opts.data),
        ("--dag", &opts.dag),
        ("--outcome", &opts.outcome),
    ] {
        if val.is_empty() {
            return Err(format!("{name} is required\n\n{USAGE}"));
        }
    }
    if opts.mutable.is_empty() {
        return Err(format!("--mutable is required\n\n{USAGE}"));
    }
    if opts.protected.is_empty() {
        return Err(format!("--protected is required\n\n{USAGE}"));
    }
    Ok(opts)
}

/// Translate the fairness spec string into a constraint.
pub fn parse_fairness(spec: &str) -> Result<FairnessConstraint, String> {
    if spec == "none" {
        return Ok(FairnessConstraint::None);
    }
    let (kind, threshold) = spec
        .split_once(':')
        .ok_or_else(|| format!("fairness spec `{spec}` needs KIND:THRESHOLD"))?;
    let threshold: f64 = threshold
        .parse()
        .map_err(|e| format!("fairness threshold: {e}"))?;
    let scope = |s: &str| {
        if s.ends_with("group") {
            FairnessScope::Group
        } else {
            FairnessScope::Individual
        }
    };
    match kind {
        "sp-group" | "sp-individual" => Ok(FairnessConstraint::StatisticalParity {
            scope: scope(kind),
            epsilon: threshold,
        }),
        "bgl-group" | "bgl-individual" => Ok(FairnessConstraint::BoundedGroupLoss {
            scope: scope(kind),
            tau: threshold,
        }),
        other => Err(format!("unknown fairness kind `{other}`")),
    }
}

/// Translate the coverage spec string into a constraint.
pub fn parse_coverage(spec: &str) -> Result<CoverageConstraint, String> {
    if spec == "none" {
        return Ok(CoverageConstraint::None);
    }
    let parts: Vec<&str> = spec.split(':').collect();
    if parts.len() != 3 {
        return Err(format!("coverage spec `{spec}` needs KIND:THETA:THETA_P"));
    }
    let theta: f64 = parts[1].parse().map_err(|e| format!("theta: {e}"))?;
    let theta_protected: f64 = parts[2].parse().map_err(|e| format!("theta_p: {e}"))?;
    match parts[0] {
        "group" => Ok(CoverageConstraint::Group {
            theta,
            theta_protected,
        }),
        "rule" => Ok(CoverageConstraint::Rule {
            theta,
            theta_protected,
        }),
        other => Err(format!("unknown coverage kind `{other}`")),
    }
}

/// Translate the estimator spec string; accepts every built-in estimator
/// by its stable name (`linear`, `stratified`, `ipw`, `aipw`, `matching`).
pub fn parse_estimator(spec: &str) -> Result<EstimatorKind, String> {
    EstimatorKind::parse(spec).ok_or_else(|| {
        let known: Vec<&str> = EstimatorKind::ALL.iter().map(|k| k.name()).collect();
        format!(
            "unknown estimator `{spec}` (expected one of: {})",
            known.join(", ")
        )
    })
}

/// Build the protected pattern, inferring value types from the frame.
pub fn protected_pattern(df: &DataFrame, pairs: &[(String, String)]) -> Result<Pattern, String> {
    let mut preds = Vec::with_capacity(pairs.len());
    for (attr, raw) in pairs {
        let col = df
            .column(attr)
            .map_err(|e| format!("protected attribute: {e}"))?;
        let value = match col.data_type() {
            faircap_table::DataType::Int => Value::Int(
                raw.parse::<i64>()
                    .map_err(|e| format!("protected value for {attr}: {e}"))?,
            ),
            faircap_table::DataType::Float => Value::Float(
                raw.parse::<f64>()
                    .map_err(|e| format!("protected value for {attr}: {e}"))?,
            ),
            faircap_table::DataType::Bool => Value::Bool(raw == "true"),
            faircap_table::DataType::Cat => Value::from(raw.as_str()),
        };
        preds.push(Predicate::eq(attr, value));
    }
    Ok(Pattern::new(preds))
}

/// Load the data/DAG/protected-pattern inputs and build the session,
/// optionally warm-starting from a snapshot file. Every failure here is a
/// [`CliError::Config`]: the user handed us something unusable.
fn build_session(
    data: &str,
    dag: &str,
    outcome: &str,
    mutable: &[String],
    protected: &[(String, String)],
    load_cache: Option<&str>,
) -> Result<PrescriptionSession, CliError> {
    let df = csv::read_csv(data).map_err(|e| CliError::Config(format!("reading {data}: {e}")))?;
    let dag_text = std::fs::read_to_string(dag)
        .map_err(|e| CliError::Config(format!("reading {dag}: {e}")))?;
    let dag = Dag::parse_edge_list(&dag_text)
        .map_err(|e| CliError::Config(format!("parsing DAG: {e}")))?;
    let immutable: Vec<String> = df
        .names()
        .iter()
        .filter(|c| **c != outcome && !mutable.contains(c))
        .cloned()
        .collect();
    let protected = protected_pattern(&df, protected).map_err(CliError::Config)?;
    let mut builder = FairCap::builder()
        .data(df)
        .dag(dag)
        .outcome(outcome)
        .immutable(immutable)
        .mutable(mutable.iter().cloned())
        .protected(protected);
    if let Some(path) = load_cache {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::Snapshot(format!("reading cache {path}: {e}")))?;
        let snapshot =
            SessionSnapshot::decode(&text).map_err(|e| CliError::Snapshot(e.to_string()))?;
        builder = builder.warm_start(snapshot);
    }
    builder.build().map_err(|e| match e {
        // A refused snapshot (wrong DAG/data/outcome/rows) is a snapshot
        // problem, not a data problem — serve falls back to a cold boot.
        faircap_core::Error::Snapshot(_) => CliError::Snapshot(e.to_string()),
        other => CliError::Config(other.to_string()),
    })
}

/// Load inputs and run FairCap according to the options.
///
/// Builds a [`FairCap`] session — all input validation (missing columns,
/// ill-typed outcome, outcome absent from the DAG, role conflicts) surfaces
/// as [`CliError::Config`] (exit code 2); a failing solve surfaces as
/// [`CliError::Runtime`] (exit code 1) rendered through the typed engine
/// error's `Display`.
///
/// `--load-cache` warm-starts the session from a snapshot file before
/// solving; `--save-cache` persists the warmed caches afterwards. When
/// either is given, the solve's estimate-cache counters are printed (the
/// CI snapshot round-trip job asserts `misses=0` on a warm re-solve).
pub fn execute(opts: &CliOptions) -> Result<SolutionReport, CliError> {
    let cfg = FairCapConfig {
        fairness: parse_fairness(&opts.fairness).map_err(CliError::Config)?,
        coverage: parse_coverage(&opts.coverage).map_err(CliError::Config)?,
        estimator: parse_estimator(&opts.estimator).map_err(CliError::Config)?,
        max_rules: opts.max_rules,
        ..FairCapConfig::default()
    };
    let session = build_session(
        &opts.data,
        &opts.dag,
        &opts.outcome,
        &opts.mutable,
        &opts.protected,
        opts.load_cache.as_deref(),
    )?;
    let mut request = SolveRequest::from(cfg);
    request.workers = opts.workers;
    let report = session.solve(&request).map_err(CliError::Runtime)?;
    if let Some(path) = &opts.save_cache {
        std::fs::write(path, session.snapshot().encode())
            .map_err(|e| CliError::Io(format!("writing cache {path}: {e}")))?;
    }
    if opts.save_cache.is_some() || opts.load_cache.is_some() {
        let stats = session.cache_stats();
        println!(
            "estimate-cache: hits={} misses={} entries={} evictions={}",
            stats.hits, stats.misses, stats.entries, stats.evictions
        );
        for (label, c) in [
            ("grouping-cache", session.grouping_cache_stats()),
            ("intervention-cache", session.intervention_cache_stats()),
        ] {
            println!(
                "{label}: hits={} misses={} entries={} evictions={}",
                c.hits, c.misses, c.entries, c.evictions
            );
        }
    }
    Ok(report)
}

/// One dataset group of the `faircap serve` subcommand: the session it
/// registers and the inputs that build it.
#[derive(Debug, Clone)]
pub struct ServeDatasetSpec {
    /// CSV file with the data.
    pub data: String,
    /// Edge-list / DOT file with the causal DAG.
    pub dag: String,
    /// Outcome attribute.
    pub outcome: String,
    /// Comma-separated mutable attributes.
    pub mutable: Vec<String>,
    /// Protected-group predicates `attr=value`.
    pub protected: Vec<(String, String)>,
    /// Session name the dataset registers under (default: `default`).
    pub name: String,
}

/// Parsed options of the `faircap serve` subcommand.
#[derive(Debug, Clone)]
pub struct ServeCliOptions {
    /// Datasets to register, one warm session each. The dataset flags
    /// (`--name/--data/--dag/--outcome/--mutable/--protected`) are
    /// repeatable: re-specifying one that is already set starts the next
    /// dataset group.
    pub datasets: Vec<ServeDatasetSpec>,
    /// Bind address.
    pub addr: String,
    /// Max concurrent solves (solve-pool workers).
    pub solve_workers: usize,
    /// Bounded solve-queue depth (admission control; overflow → 429).
    pub queue_depth: usize,
    /// Per-request solve timeout in milliseconds (overrun → 504).
    pub timeout_ms: u64,
    /// Snapshot directory: warm-boot source and `POST /v1/snapshot` sink.
    pub snapshot_dir: Option<String>,
}

/// Usage text of the `serve` subcommand.
pub const SERVE_USAGE: &str = "\
faircap serve — HTTP serving front end over warm prescription sessions

USAGE:
  faircap serve --data FILE.csv --dag DAG.txt --outcome COL \\
                --mutable a,b,c --protected attr=value[,attr=value] \\
                [--name default] \\
                [--data FILE2.csv --dag DAG2.txt --outcome COL2 \\
                 --mutable d,e --protected attr=value --name second] ... \\
                [--addr 127.0.0.1:7341] \\
                [--solve-workers 2] [--queue-depth 16] [--timeout-ms 120000] \\
                [--snapshot-dir DIR]

Boots one warm PrescriptionSession per dataset group and serves
POST /v1/solve, GET /v1/sessions, GET /v1/metrics, POST /v1/snapshot, and
POST /v1/shutdown (graceful drain). The dataset flags are repeatable:
re-specifying one that is already set starts the next dataset group, and
each group registers under its --name (solve requests route with the
`session` body field; it may be omitted when exactly one session is
registered). --solve-workers bounds concurrent solves; --queue-depth
bounds the admission queue (overflow answers 429); --timeout-ms bounds one
solve (overrun answers 504). With --snapshot-dir, the server warm-boots
each session from DIR/<name>.fc when present and POST /v1/snapshot
persists the live caches there. Endpoint schemas: docs/serving.md.";

/// Dataset fields accumulated while parsing one group.
#[derive(Default, Clone)]
struct PartialDataset {
    data: Option<String>,
    dag: Option<String>,
    outcome: Option<String>,
    mutable: Option<Vec<String>>,
    protected: Option<Vec<(String, String)>>,
    name: Option<String>,
}

impl PartialDataset {
    fn is_empty(&self) -> bool {
        self.data.is_none()
            && self.dag.is_none()
            && self.outcome.is_none()
            && self.mutable.is_none()
            && self.protected.is_none()
            && self.name.is_none()
    }

    fn finish(self) -> Result<ServeDatasetSpec, String> {
        let required = |field: Option<String>, flag: &str| {
            field.ok_or_else(|| format!("{flag} is required\n\n{SERVE_USAGE}"))
        };
        Ok(ServeDatasetSpec {
            data: required(self.data, "--data")?,
            dag: required(self.dag, "--dag")?,
            outcome: required(self.outcome, "--outcome")?,
            mutable: self
                .mutable
                .ok_or_else(|| format!("--mutable is required\n\n{SERVE_USAGE}"))?,
            protected: self
                .protected
                .ok_or_else(|| format!("--protected is required\n\n{SERVE_USAGE}"))?,
            name: self.name.unwrap_or_else(|| "default".into()),
        })
    }
}

/// Parse `faircap serve` arguments (after the subcommand word).
pub fn parse_serve_args(args: &[String]) -> Result<ServeCliOptions, String> {
    let mut opts = ServeCliOptions {
        datasets: Vec::new(),
        addr: "127.0.0.1:7341".into(),
        solve_workers: 2,
        queue_depth: 16,
        timeout_ms: 120_000,
        snapshot_dir: None,
    };
    let mut current = PartialDataset::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(SERVE_USAGE.to_owned());
        }
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        // Re-specifying a dataset flag that the current group already set
        // closes that group and opens the next one.
        macro_rules! set_dataset_field {
            ($field:ident, $value:expr) => {{
                let v = $value;
                if current.$field.is_some() {
                    opts.datasets.push(std::mem::take(&mut current).finish()?);
                }
                current.$field = Some(v);
            }};
        }
        match flag.as_str() {
            "--data" => set_dataset_field!(data, value()?),
            "--dag" => set_dataset_field!(dag, value()?),
            "--outcome" => set_dataset_field!(outcome, value()?),
            "--mutable" => set_dataset_field!(
                mutable,
                value()?
                    .split(',')
                    .map(|s| s.trim().to_owned())
                    .filter(|s| !s.is_empty())
                    .collect::<Vec<_>>()
            ),
            "--protected" => {
                let mut pairs = Vec::new();
                for pair in value()?.split(',') {
                    let (attr, v) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("--protected needs attr=value, got `{pair}`"))?;
                    pairs.push((attr.trim().to_owned(), v.trim().to_owned()));
                }
                set_dataset_field!(protected, pairs);
            }
            "--name" => set_dataset_field!(name, value()?),
            "--addr" => opts.addr = value()?,
            "--solve-workers" => {
                opts.solve_workers = value()?
                    .parse()
                    .map_err(|e| format!("--solve-workers: {e}"))?
            }
            "--queue-depth" => {
                opts.queue_depth = value()?
                    .parse()
                    .map_err(|e| format!("--queue-depth: {e}"))?
            }
            "--timeout-ms" => {
                opts.timeout_ms = value()?.parse().map_err(|e| format!("--timeout-ms: {e}"))?
            }
            "--snapshot-dir" => opts.snapshot_dir = Some(value()?),
            other => return Err(format!("unknown flag `{other}`\n\n{SERVE_USAGE}")),
        }
    }
    if !current.is_empty() || opts.datasets.is_empty() {
        opts.datasets.push(current.finish()?);
    }
    let mut seen = std::collections::BTreeSet::new();
    for spec in &opts.datasets {
        if !seen.insert(spec.name.as_str()) {
            return Err(format!(
                "duplicate session name `{}`; give each dataset group a distinct --name",
                spec.name
            ));
        }
    }
    if opts.solve_workers == 0 || opts.queue_depth == 0 {
        return Err("--solve-workers and --queue-depth must be at least 1".into());
    }
    Ok(opts)
}

/// Build one dataset group's session, warm-booting from
/// `DIR/<name>.fc` when a snapshot directory is configured and the file
/// exists. An unreadable or incompatible snapshot (e.g. the refused
/// pre-v2 format) is reported on stderr and the session boots cold —
/// availability beats a stale cache. A successful warm boot returns its
/// provenance (snapshot path, wall-clock restore duration) for the
/// observability endpoints.
fn build_serve_session(
    spec: &ServeDatasetSpec,
    snapshot_dir: Option<&str>,
) -> Result<(PrescriptionSession, Option<WarmBootInfo>), CliError> {
    let snapshot_path = snapshot_dir
        .map(|dir| std::path::Path::new(dir).join(format!("{}.fc", spec.name)))
        .filter(|p| p.exists());
    match &snapshot_path {
        Some(path) => {
            let restore_started = std::time::Instant::now();
            match build_session(
                &spec.data,
                &spec.dag,
                &spec.outcome,
                &spec.mutable,
                &spec.protected,
                Some(&path.display().to_string()),
            ) {
                Ok(session) => {
                    let info = WarmBootInfo {
                        snapshot_path: path.display().to_string(),
                        restore_ms: restore_started.elapsed().as_secs_f64() * 1e3,
                    };
                    eprintln!(
                        "faircap-serve: warm boot from {} ({:.1} ms)",
                        path.display(),
                        info.restore_ms
                    );
                    Ok((session, Some(info)))
                }
                // Only a *snapshot* problem (unreadable, refused version,
                // instance mismatch) falls back to a cold boot; broken
                // data/DAG inputs propagate as the config errors they are.
                Err(e @ CliError::Snapshot(_)) => {
                    eprintln!(
                        "faircap-serve: warning: ignoring snapshot {}: {e}; booting cold",
                        path.display()
                    );
                    build_session(
                        &spec.data,
                        &spec.dag,
                        &spec.outcome,
                        &spec.mutable,
                        &spec.protected,
                        None,
                    )
                    .map(|session| (session, None))
                }
                Err(other) => Err(other),
            }
        }
        None => build_session(
            &spec.data,
            &spec.dag,
            &spec.outcome,
            &spec.mutable,
            &spec.protected,
            None,
        )
        .map(|session| (session, None)),
    }
}

/// Boot the serving front end — one warm session per dataset group — and
/// block until a graceful shutdown is requested (`POST /v1/shutdown`),
/// then drain and return.
pub fn run_serve(opts: &ServeCliOptions) -> Result<(), CliError> {
    let registry = std::sync::Arc::new(SessionRegistry::new());
    for spec in &opts.datasets {
        let (session, warm_boot) = build_serve_session(spec, opts.snapshot_dir.as_deref())?;
        let entry = registry
            .register(&spec.name, session)
            .expect("parse_serve_args refuses duplicate names");
        if let Some(info) = warm_boot {
            entry.set_warm_boot(info);
        }
    }
    let config = ServeConfig {
        addr: opts.addr.clone(),
        max_concurrent_solves: opts.solve_workers,
        solve_queue_depth: opts.queue_depth,
        solve_timeout: Duration::from_millis(opts.timeout_ms),
        snapshot_dir: opts.snapshot_dir.as_ref().map(Into::into),
        ..ServeConfig::default()
    };
    let server = Server::start(config, registry)
        .map_err(|e| CliError::Config(format!("binding {}: {e}", opts.addr)))?;
    let names: Vec<&str> = opts.datasets.iter().map(|s| s.name.as_str()).collect();
    println!(
        "faircap-serve listening on http://{} (sessions: {})",
        server.addr(),
        names.join(", ")
    );
    server.wait_for_shutdown_request();
    println!("faircap-serve: draining in-flight solves …");
    server.shutdown();
    println!("faircap-serve: stopped");
    Ok(())
}

/// Parsed options of the `faircap gen` subcommand. The spec knobs default
/// to [`ScenarioSpec::default`] so `faircap gen --out DIR` alone produces
/// the standard benchmark scenario.
#[derive(Debug, Clone)]
pub struct GenCliOptions {
    /// Output directory (`scenario.csv` / `scenario.dag` / `scenario.json`).
    pub out: String,
    /// The scenario spec assembled from the knob flags.
    pub spec: ScenarioSpec,
    /// Run the ground-truth recovery gate after generating.
    pub check: bool,
    /// Recovery gate: absolute error slack (outcome units).
    pub check_tol: f64,
    /// Recovery gate: additional slack in standard-error units.
    pub check_z: f64,
}

/// Usage text of the `gen` subcommand.
pub const GEN_USAGE: &str = "\
faircap gen — sample a synthetic scenario with planted ground-truth CATEs

USAGE:
  faircap gen --out DIR [--rows 100000] [--seed 7] [--name synthetic] \\
              [--stable 3] [--flexible 3] [--cardinality 3] \\
              [--confounding 0.6] [--heterogeneity 0.5] [--noise 10] \\
              [--check] [--check-tol 1.0] [--check-z 4.0]

Samples `--rows` rows from a structural causal model with `--stable`
immutable confounders (each `--cardinality` levels), `--flexible` binary
treatments, and a continuous outcome; every coefficient is hash-derived
from the spec, so the planted per-group CATEs are closed-form and the
sampled frame is bit-reproducible per (spec, seed). Writes scenario.csv,
scenario.dag (both directly usable as --data/--dag for `faircap solve` and
`faircap serve`), and scenario.json (roles + truth table) into DIR.

--check grades stratified/IPW/AIPW/matching against the planted truth in every
(treatment × group) cell (pass: |err| ≤ check-tol + check-z·se) and
requires the unadjusted difference-in-means to be provably biased; any
violation exits 1. Formats and semantics: docs/scenarios.md.";

/// Parse `faircap gen` arguments (after the subcommand word).
pub fn parse_gen_args(args: &[String]) -> Result<GenCliOptions, String> {
    let mut opts = GenCliOptions {
        out: String::new(),
        spec: ScenarioSpec::default(),
        check: false,
        check_tol: 1.0,
        check_z: 4.0,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(GEN_USAGE.to_owned());
        }
        if flag == "--check" {
            opts.check = true;
            continue;
        }
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        let spec = &mut opts.spec;
        match flag.as_str() {
            "--out" => opts.out = value()?,
            "--name" => spec.name = value()?,
            "--rows" => spec.rows = value()?.parse().map_err(|e| format!("--rows: {e}"))?,
            "--seed" => spec.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--stable" => spec.stable = value()?.parse().map_err(|e| format!("--stable: {e}"))?,
            "--flexible" => {
                spec.flexible = value()?.parse().map_err(|e| format!("--flexible: {e}"))?
            }
            "--cardinality" => {
                spec.cardinality = value()?
                    .parse()
                    .map_err(|e| format!("--cardinality: {e}"))?
            }
            "--confounding" => {
                spec.confounding = value()?
                    .parse()
                    .map_err(|e| format!("--confounding: {e}"))?
            }
            "--heterogeneity" => {
                spec.heterogeneity = value()?
                    .parse()
                    .map_err(|e| format!("--heterogeneity: {e}"))?
            }
            "--noise" => spec.noise = value()?.parse().map_err(|e| format!("--noise: {e}"))?,
            "--check-tol" => {
                opts.check_tol = value()?.parse().map_err(|e| format!("--check-tol: {e}"))?
            }
            "--check-z" => {
                opts.check_z = value()?.parse().map_err(|e| format!("--check-z: {e}"))?
            }
            other => return Err(format!("unknown flag `{other}`\n\n{GEN_USAGE}")),
        }
    }
    if opts.out.is_empty() {
        return Err(format!("--out is required\n\n{GEN_USAGE}"));
    }
    opts.spec
        .validate()
        .map_err(|e| format!("{e}\n\n{GEN_USAGE}"))?;
    Ok(opts)
}

/// Generate a scenario directory, print its provenance (rows, seed,
/// fingerprint) and truth table, and — with `--check` — gate on
/// ground-truth recovery: every adjusted (estimator × treatment × group)
/// cell must land within tolerance *and* the unadjusted estimate must be
/// provably biased, or the run fails with [`CliError::Check`] (exit 1).
pub fn run_gen(opts: &GenCliOptions) -> Result<(), CliError> {
    let sc = faircap_scenario::generate(&opts.spec).map_err(|e| CliError::Config(e.to_string()))?;
    let dir = std::path::Path::new(&opts.out);
    faircap_scenario::save(&sc, dir)
        .map_err(|e| CliError::Io(format!("writing {}: {e}", dir.display())))?;
    println!(
        "faircap-gen: {} ({} rows, seed {}) -> {} (fingerprint {:#018x})",
        sc.spec.name,
        sc.spec.rows,
        sc.spec.seed,
        dir.display(),
        sc.fingerprint()
    );
    for t in &sc.truth {
        println!(
            "  truth {} [{}] = {:+.4}",
            t.treatment,
            t.group.name(),
            t.cate
        );
    }
    if !opts.check {
        return Ok(());
    }
    let recovery_options = RecoveryOptions {
        abs_tol: opts.check_tol,
        z_tol: opts.check_z,
        ..RecoveryOptions::default()
    };
    let checks = faircap_scenario::check_recovery(&sc, &recovery_options)
        .map_err(|e| CliError::Check(e.to_string()))?;
    let failed = checks.iter().filter(|c| !c.pass).count();
    for c in &checks {
        println!("  {c}");
    }
    let treatment = &sc.dataset.mutable[0];
    let naive =
        faircap_scenario::naive_bias(&sc, treatment).map_err(|e| CliError::Check(e.to_string()))?;
    let biased = naive.biased(opts.check_tol, opts.check_z);
    println!(
        "  {} naive difference-in-means on {}: {naive}",
        if biased {
            "BIASED (expected)"
        } else {
            "UNBIASED"
        },
        treatment
    );
    if failed > 0 {
        return Err(CliError::Check(format!(
            "recovery gate: {failed} of {} cells out of tolerance",
            checks.len()
        )));
    }
    if !biased {
        return Err(CliError::Check(
            "recovery gate: the unadjusted estimate is not provably biased — \
             the scenario's confounding has no teeth at this size"
                .into(),
        ));
    }
    println!(
        "  recovery gate: all {} cells within tolerance",
        checks.len()
    );
    Ok(())
}

/// Parsed options of the `faircap replay` subcommand.
#[derive(Debug, Clone)]
pub struct ReplayCliOptions {
    /// Scenario directory written by `faircap gen`.
    pub scenario: String,
    /// Target server address; `None` replays against an in-process session.
    pub addr: Option<String>,
    /// Session name requests route to (HTTP targets).
    pub session: String,
    /// Workload mix preset name.
    pub mix: String,
    /// Total requests to issue.
    pub requests: usize,
    /// Concurrent client workers.
    pub clients: usize,
    /// Open-loop arrival rate in requests/second; `None` = closed loop.
    pub rate_hz: Option<f64>,
    /// Fraction of requests forced down the cold (re-mining) path.
    pub cold_fraction: f64,
    /// Statistical-parity epsilon for the sweep variants; `None` scales it
    /// from the scenario's planted utility gap.
    pub epsilon: Option<f64>,
    /// Append the report row to this JSON file.
    pub out: Option<String>,
    /// Ask the target server to shut down gracefully after the replay.
    pub shutdown: bool,
}

/// Usage text of the `replay` subcommand.
pub const REPLAY_USAGE: &str = "\
faircap replay — drive a solve workload against a scenario

USAGE:
  faircap replay --scenario DIR [--addr HOST:PORT] [--session default] \\
                 [--mix mixed] [--requests 64] [--clients 4] [--rate HZ] \\
                 [--cold-fraction 0.25] [--epsilon E] \\
                 [--out BENCH_scale.json] [--shutdown]

Loads the scenario directory written by `faircap gen` and replays a solve
mix against it: in-process by default, or over HTTP against a running
`faircap serve` when --addr is given (requests carry `session: --session`).
Mixes: steady | sweep | estimators | mixed (constraint sweep + estimator
rotation). --rate switches from a closed loop (--clients workers
back-to-back) to an open loop pacing request starts at HZ/second.
--cold-fraction interleaves requests that force grouping re-mining.

The report — throughput, latency percentiles, 429/503/504 counts,
estimate-cache counters, and the scenario's rows+seed — is printed and,
with --out, appended to the JSON array in that file. --shutdown posts
/v1/shutdown after the run so CI can tear the server down. Details:
docs/scenarios.md.";

/// Parse `faircap replay` arguments (after the subcommand word).
pub fn parse_replay_args(args: &[String]) -> Result<ReplayCliOptions, String> {
    let mut opts = ReplayCliOptions {
        scenario: String::new(),
        addr: None,
        session: "default".into(),
        mix: "mixed".into(),
        requests: 64,
        clients: 4,
        rate_hz: None,
        cold_fraction: 0.25,
        epsilon: None,
        out: None,
        shutdown: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(REPLAY_USAGE.to_owned());
        }
        if flag == "--shutdown" {
            opts.shutdown = true;
            continue;
        }
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--scenario" => opts.scenario = value()?,
            "--addr" => opts.addr = Some(value()?),
            "--session" => opts.session = value()?,
            "--mix" => opts.mix = value()?,
            "--requests" => {
                opts.requests = value()?.parse().map_err(|e| format!("--requests: {e}"))?
            }
            "--clients" => {
                opts.clients = value()?.parse().map_err(|e| format!("--clients: {e}"))?
            }
            "--rate" => opts.rate_hz = Some(value()?.parse().map_err(|e| format!("--rate: {e}"))?),
            "--cold-fraction" => {
                opts.cold_fraction = value()?
                    .parse()
                    .map_err(|e| format!("--cold-fraction: {e}"))?
            }
            "--epsilon" => {
                opts.epsilon = Some(value()?.parse().map_err(|e| format!("--epsilon: {e}"))?)
            }
            "--out" => opts.out = Some(value()?),
            other => return Err(format!("unknown flag `{other}`\n\n{REPLAY_USAGE}")),
        }
    }
    if opts.scenario.is_empty() {
        return Err(format!("--scenario is required\n\n{REPLAY_USAGE}"));
    }
    if !WorkloadMix::PRESETS.contains(&opts.mix.as_str()) {
        return Err(format!(
            "unknown mix `{}` (expected one of: {})\n\n{REPLAY_USAGE}",
            opts.mix,
            WorkloadMix::PRESETS.join(", ")
        ));
    }
    if opts.requests == 0 || opts.clients == 0 {
        return Err("--requests and --clients must be at least 1".into());
    }
    if !(0.0..=1.0).contains(&opts.cold_fraction) {
        return Err("--cold-fraction must be in [0, 1]".into());
    }
    if opts.shutdown && opts.addr.is_none() {
        return Err("--shutdown needs --addr (there is no server to stop in-process)".into());
    }
    Ok(opts)
}

/// Append one report row to the JSON array in `path` (created as a
/// one-element array when the file is missing or empty).
fn append_bench_entry(path: &str, entry: faircap_core::Json) -> Result<(), CliError> {
    use faircap_core::Json;
    let mut entries = match std::fs::read_to_string(path) {
        Ok(text) if !text.trim().is_empty() => match Json::parse(&text) {
            Ok(Json::Arr(items)) => items,
            // A single-object file (older writers) becomes the first entry.
            Ok(other) => vec![other],
            Err(e) => return Err(CliError::Io(format!("parsing {path}: {e}"))),
        },
        _ => Vec::new(),
    };
    entries.push(entry);
    std::fs::write(path, Json::Arr(entries).render() + "\n")
        .map_err(|e| CliError::Io(format!("writing {path}: {e}")))
}

/// Load the scenario, run the replay, print the summary, and append the
/// report row to `--out`. A run in which **no** request succeeded fails
/// with [`CliError::Io`] — a misrouted session name or a dead server must
/// not pass CI as a "successful" benchmark.
pub fn run_replay(opts: &ReplayCliOptions) -> Result<(), CliError> {
    let dir = std::path::Path::new(&opts.scenario);
    let sc = faircap_scenario::load(dir)
        .map_err(|e| CliError::Config(format!("loading scenario {}: {e}", dir.display())))?;
    let epsilon = opts
        .epsilon
        .unwrap_or_else(|| faircap_scenario::default_epsilon(&sc.spec));
    let mix = WorkloadMix::preset(&opts.mix, epsilon)
        .expect("parse_replay_args validated the preset name");
    let arrival = match opts.rate_hz {
        Some(rate_hz) => Arrival::Open {
            clients: opts.clients,
            rate_hz,
        },
        None => Arrival::Closed {
            clients: opts.clients,
        },
    };
    let replay_options = ReplayOptions {
        mix,
        arrival,
        total: opts.requests,
        cold_fraction: opts.cold_fraction,
    };
    let client = match &opts.addr {
        Some(addr) => {
            let addr: std::net::SocketAddr = addr
                .parse()
                .map_err(|e| CliError::Config(format!("--addr {addr}: {e}")))?;
            let client = faircap_serve::ServeClient::new(addr);
            client
                .wait_ready(Duration::from_secs(30))
                .map_err(|e| CliError::Io(format!("server {addr} not ready: {e}")))?;
            Some(client)
        }
        None => None,
    };
    let report = match &client {
        Some(client) => {
            let target = ReplayTarget::Http {
                client: client.clone(),
                session: opts.session.clone(),
            };
            faircap_scenario::replay(&target, &replay_options, &sc.spec)
        }
        None => {
            let session = sc.session().map_err(|e| CliError::Config(e.to_string()))?;
            faircap_scenario::replay(&ReplayTarget::Session(&session), &replay_options, &sc.spec)
        }
    }
    .map_err(|e| CliError::Io(e.to_string()))?;
    println!("faircap-replay: {}", report.summary());
    if let Some(path) = &opts.out {
        append_bench_entry(path, report.to_json())?;
        println!("faircap-replay: appended to {path}");
    }
    if let (true, Some(client)) = (opts.shutdown, &client) {
        client
            .post_json("/v1/shutdown", "{}")
            .map_err(|e| CliError::Io(format!("shutdown request: {e}")))?;
        println!("faircap-replay: requested server shutdown");
    }
    if report.ok == 0 {
        return Err(CliError::Io(format!(
            "no request succeeded ({})",
            report.summary()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_owned()).collect()
    }

    #[test]
    fn parses_full_command_line() {
        let opts = parse_args(&args(
            "--data d.csv --dag g.txt --outcome salary --mutable edu,role \
             --protected gdp=low --fairness sp-group:10000 \
             --coverage group:0.5:0.5 --estimator ipw --max-rules 7",
        ))
        .unwrap();
        assert_eq!(opts.data, "d.csv");
        assert_eq!(opts.mutable, vec!["edu", "role"]);
        assert_eq!(opts.protected, vec![("gdp".into(), "low".into())]);
        assert_eq!(opts.max_rules, 7);
        assert!(matches!(
            parse_fairness(&opts.fairness).unwrap(),
            FairnessConstraint::StatisticalParity {
                scope: FairnessScope::Group,
                ..
            }
        ));
        assert!(matches!(
            parse_coverage(&opts.coverage).unwrap(),
            CoverageConstraint::Group { .. }
        ));
        assert!(matches!(
            parse_estimator(&opts.estimator).unwrap(),
            EstimatorKind::Ipw
        ));
    }

    #[test]
    fn estimator_spec_variants() {
        assert!(matches!(
            parse_estimator("aipw").unwrap(),
            EstimatorKind::Aipw
        ));
        assert!(matches!(
            parse_estimator("matching").unwrap(),
            EstimatorKind::Matching
        ));
        let err = parse_estimator("dowhy").unwrap_err();
        assert!(err.contains("aipw") && err.contains("matching"), "{err}");
    }

    #[test]
    fn missing_required_flags_rejected() {
        assert!(parse_args(&args("--data d.csv")).is_err());
        assert!(parse_args(&args("--data d.csv --dag g.txt --outcome o --mutable m")).is_err()); // no --protected
        assert!(parse_args(&args("--bogus x")).is_err());
        assert!(parse_args(&args("--data")).is_err()); // dangling value
    }

    #[test]
    fn fairness_spec_variants() {
        assert!(matches!(
            parse_fairness("none").unwrap(),
            FairnessConstraint::None
        ));
        assert!(matches!(
            parse_fairness("bgl-individual:0.1").unwrap(),
            FairnessConstraint::BoundedGroupLoss {
                scope: FairnessScope::Individual,
                ..
            }
        ));
        assert!(parse_fairness("sp-group").is_err());
        assert!(parse_fairness("nope:3").is_err());
        assert!(parse_fairness("sp-group:abc").is_err());
    }

    #[test]
    fn coverage_spec_variants() {
        assert!(matches!(
            parse_coverage("rule:0.3:0.2").unwrap(),
            CoverageConstraint::Rule { theta, theta_protected }
                if theta == 0.3 && theta_protected == 0.2
        ));
        assert!(parse_coverage("group:0.5").is_err());
        assert!(parse_coverage("huh:0.5:0.5").is_err());
    }

    #[test]
    fn protected_pattern_infers_types() {
        let df = DataFrame::builder()
            .cat("city", &["x", "y"])
            .int("tier", vec![1, 2])
            .bool("flag", vec![true, false])
            .build()
            .unwrap();
        let p = protected_pattern(
            &df,
            &[
                ("city".into(), "x".into()),
                ("tier".into(), "2".into()),
                ("flag".into(), "true".into()),
            ],
        )
        .unwrap();
        assert_eq!(p.len(), 3);
        assert!(protected_pattern(&df, &[("ghost".into(), "1".into())]).is_err());
        assert!(protected_pattern(&df, &[("tier".into(), "NaNope".into())]).is_err());
    }

    #[test]
    fn executor_and_cache_flags_parse() {
        let opts = parse_args(&args(
            "--data d.csv --dag g.txt --outcome o --mutable m --protected a=b \
             --workers 6 --save-cache snap.fc --load-cache old.fc",
        ))
        .unwrap();
        assert_eq!(opts.workers, Some(6));
        assert_eq!(opts.save_cache.as_deref(), Some("snap.fc"));
        assert_eq!(opts.load_cache.as_deref(), Some("old.fc"));
        assert!(parse_args(&args(
            "--data d --dag g --outcome o --mutable m --protected a=b --workers many"
        ))
        .is_err());
        // Flags default to off.
        let opts = parse_args(&args(
            "--data d --dag g --outcome o --mutable m --protected a=b",
        ))
        .unwrap();
        assert_eq!(opts.workers, None);
        assert!(opts.save_cache.is_none() && opts.load_cache.is_none());
    }

    #[test]
    fn save_then_load_cache_round_trips_through_files() {
        let dir = std::env::temp_dir().join("faircap_cli_cache_test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("d.csv");
        let dagf = dir.join("g.txt");
        let snap = dir.join("cache.fc");
        let ds = faircap_data::so::generate(2_000, 3);
        let keep = ["gdp_group", "age", "certifications", "training", "salary"];
        faircap_table::csv::write_csv(&ds.df.select(&keep).unwrap(), &data).unwrap();
        std::fs::write(
            &dagf,
            "gdp_group -> salary\nage -> salary\ncertifications -> salary\ntraining -> salary\n",
        )
        .unwrap();
        let base = format!(
            "--data {} --dag {} --outcome salary --mutable certifications,training \
             --protected gdp_group=low --max-rules 5",
            data.display(),
            dagf.display()
        );
        let cold = parse_args(&args(&format!("{base} --save-cache {}", snap.display()))).unwrap();
        let cold_report = execute(&cold).unwrap();
        assert!(snap.exists(), "--save-cache must write the snapshot");
        let warm = parse_args(&args(&format!("{base} --load-cache {}", snap.display()))).unwrap();
        let warm_report = execute(&warm).unwrap();
        let a: Vec<String> = cold_report.rules.iter().map(|r| r.to_string()).collect();
        let b: Vec<String> = warm_report.rules.iter().map(|r| r.to_string()).collect();
        assert_eq!(a, b, "warm CLI solve must reproduce the cold ruleset");
        // A corrupt snapshot is a typed, readable config-class error
        // (exit 2), carried as the Snapshot variant so the serve warm-boot
        // fallback can distinguish it from broken data/DAG inputs.
        std::fs::write(&snap, "faircap-snapshot v99\n").unwrap();
        let err = execute(&warm).unwrap_err();
        assert!(matches!(err, CliError::Snapshot(_)), "{err:?}");
        assert!(err.to_string().contains("snapshot"), "{err}");
        assert_eq!(err.exit_code(), 2);
        // Broken data inputs stay Config even when a snapshot was given —
        // the serve fallback must never blame the snapshot for those.
        let mut broken = warm.clone();
        broken.data = "/no/such/file.csv".into();
        assert!(matches!(execute(&broken).unwrap_err(), CliError::Config(_)));
        // … and so is a refused pre-v2 snapshot, with the regeneration hint.
        std::fs::write(&snap, "faircap-snapshot v1\n").unwrap();
        let err = execute(&warm).unwrap_err();
        assert!(err.to_string().contains("re-save"), "{err}");
    }

    #[test]
    fn exit_codes_distinguish_config_from_runtime() {
        // Unreadable input: config error, exit 2.
        let opts = parse_args(&args(
            "--data /no/such/file.csv --dag /no/such/dag --outcome o \
             --mutable m --protected a=b",
        ))
        .unwrap();
        let err = execute(&opts).unwrap_err();
        assert!(matches!(err, CliError::Config(_)), "{err}");
        assert_eq!(err.exit_code(), 2);
        // A runtime engine failure carries the typed error and exits 1,
        // rendered through faircap::Error's Display.
        let engine_err = faircap_core::Error::InvalidRequest("nope".into());
        let err = CliError::Runtime(engine_err.clone());
        assert_eq!(err.exit_code(), 1);
        assert_eq!(err.to_string(), engine_err.to_string());
    }

    #[test]
    fn serve_args_parse_and_validate() {
        let opts = parse_serve_args(&args(
            "--data d.csv --dag g.txt --outcome o --mutable m,n --protected a=b \
             --addr 127.0.0.1:9000 --name german --solve-workers 3 \
             --queue-depth 5 --timeout-ms 2500 --snapshot-dir /tmp/snaps",
        ))
        .unwrap();
        assert_eq!(opts.addr, "127.0.0.1:9000");
        assert_eq!(opts.datasets.len(), 1);
        assert_eq!(opts.datasets[0].name, "german");
        assert_eq!(opts.datasets[0].mutable, vec!["m", "n"]);
        assert_eq!(opts.solve_workers, 3);
        assert_eq!(opts.queue_depth, 5);
        assert_eq!(opts.timeout_ms, 2500);
        assert_eq!(opts.snapshot_dir.as_deref(), Some("/tmp/snaps"));
        // Defaults.
        let opts = parse_serve_args(&args(
            "--data d.csv --dag g.txt --outcome o --mutable m --protected a=b",
        ))
        .unwrap();
        assert_eq!(opts.datasets[0].name, "default");
        assert_eq!(opts.solve_workers, 2);
        // Required flags and bounds.
        assert!(parse_serve_args(&args("--data d.csv")).is_err());
        assert!(parse_serve_args(&args(
            "--data d --dag g --outcome o --mutable m --protected a=b --queue-depth 0"
        ))
        .is_err());
        assert!(parse_serve_args(&args("--help"))
            .unwrap_err()
            .contains("serve"));
    }

    #[test]
    fn serve_args_multi_dataset_groups() {
        // Repeating a dataset flag that is already set starts the next
        // group; global server flags may appear anywhere.
        let opts = parse_serve_args(&args(
            "--name german --data g.csv --dag g.dag --outcome credit \
             --mutable job --protected sex=female \
             --addr 127.0.0.1:9000 \
             --name so --data so.csv --dag so.dag --outcome salary \
             --mutable edu,hours --protected gender=woman",
        ))
        .unwrap();
        assert_eq!(opts.addr, "127.0.0.1:9000");
        assert_eq!(opts.datasets.len(), 2);
        assert_eq!(opts.datasets[0].name, "german");
        assert_eq!(opts.datasets[0].outcome, "credit");
        assert_eq!(opts.datasets[1].name, "so");
        assert_eq!(opts.datasets[1].mutable, vec!["edu", "hours"]);
        assert_eq!(
            opts.datasets[1].protected,
            vec![("gender".to_owned(), "woman".to_owned())]
        );
        // A second group missing required fields is rejected.
        assert!(parse_serve_args(&args(
            "--data a.csv --dag a.dag --outcome o --mutable m --protected a=b \
             --name x --data b.csv"
        ))
        .is_err());
        // Duplicate session names are rejected.
        let err = parse_serve_args(&args(
            "--data a.csv --dag a.dag --outcome o --mutable m --protected a=b \
             --data b.csv --dag b.dag --outcome o --mutable m --protected a=b",
        ))
        .unwrap_err();
        assert!(err.contains("duplicate session name"), "{err}");
    }

    #[test]
    fn gen_args_parse_and_validate() {
        let opts = parse_gen_args(&args(
            "--out /tmp/sc --rows 5000 --seed 11 --name big --stable 4 \
             --flexible 2 --cardinality 5 --confounding 0.8 \
             --heterogeneity 0.2 --noise 4.5 --check --check-tol 0.5 --check-z 3",
        ))
        .unwrap();
        assert_eq!(opts.out, "/tmp/sc");
        assert_eq!(opts.spec.rows, 5000);
        assert_eq!(opts.spec.seed, 11);
        assert_eq!(opts.spec.stable, 4);
        assert_eq!(opts.spec.confounding, 0.8);
        assert!(opts.check);
        assert_eq!(opts.check_tol, 0.5);
        // Defaults are the standard spec, check off.
        let opts = parse_gen_args(&args("--out d")).unwrap();
        assert_eq!(opts.spec, ScenarioSpec::default());
        assert!(!opts.check);
        // Required flag, bad knobs, unknown flags.
        assert!(parse_gen_args(&args("--rows 10")).is_err());
        assert!(parse_gen_args(&args("--out d --cardinality 1")).is_err());
        assert!(parse_gen_args(&args("--out d --bogus x")).is_err());
        assert!(parse_gen_args(&args("--help")).unwrap_err().contains("gen"));
    }

    #[test]
    fn replay_args_parse_and_validate() {
        let opts = parse_replay_args(&args(
            "--scenario d --addr 127.0.0.1:7341 --session syn --mix sweep \
             --requests 32 --clients 2 --rate 10 --cold-fraction 0.5 \
             --epsilon 99 --out BENCH_scale.json --shutdown",
        ))
        .unwrap();
        assert_eq!(opts.addr.as_deref(), Some("127.0.0.1:7341"));
        assert_eq!(opts.session, "syn");
        assert_eq!(opts.mix, "sweep");
        assert_eq!(opts.rate_hz, Some(10.0));
        assert_eq!(opts.epsilon, Some(99.0));
        assert!(opts.shutdown);
        // Defaults: in-process, closed loop, mixed mix.
        let opts = parse_replay_args(&args("--scenario d")).unwrap();
        assert!(opts.addr.is_none() && opts.rate_hz.is_none());
        assert_eq!(opts.mix, "mixed");
        assert_eq!(opts.cold_fraction, 0.25);
        // Rejections.
        assert!(parse_replay_args(&args("--mix steady")).is_err()); // no --scenario
        assert!(parse_replay_args(&args("--scenario d --mix bogus")).is_err());
        assert!(parse_replay_args(&args("--scenario d --requests 0")).is_err());
        assert!(parse_replay_args(&args("--scenario d --cold-fraction 1.5")).is_err());
        // --shutdown without a server makes no sense.
        assert!(parse_replay_args(&args("--scenario d --shutdown")).is_err());
    }

    #[test]
    fn gen_then_replay_in_process_end_to_end() {
        let dir = std::env::temp_dir().join("faircap_cli_gen_replay_test");
        let _ = std::fs::remove_dir_all(&dir);
        let gen = parse_gen_args(&args(&format!(
            "--out {} --rows 1500 --seed 7 --name cli-e2e",
            dir.display()
        )))
        .unwrap();
        run_gen(&gen).unwrap();
        assert!(dir.join("scenario.csv").exists());
        assert!(dir.join("scenario.dag").exists());
        assert!(dir.join("scenario.json").exists());
        // The generated CSV+DAG feed the plain solve path directly.
        let solve = parse_args(&args(&format!(
            "--data {0}/scenario.csv --dag {0}/scenario.dag --outcome outcome \
             --mutable f0,f1,f2 --protected s0=v0 --max-rules 3",
            dir.display()
        )))
        .unwrap();
        assert!(execute(&solve).unwrap().size() > 0);
        // Replay in-process and append two report rows to the bench file.
        let bench = dir.join("BENCH_scale.json");
        let replay = parse_replay_args(&args(&format!(
            "--scenario {} --mix steady --requests 4 --clients 2 --out {}",
            dir.display(),
            bench.display()
        )))
        .unwrap();
        run_replay(&replay).unwrap();
        run_replay(&replay).unwrap();
        let doc = faircap_core::Json::parse(&std::fs::read_to_string(&bench).unwrap()).unwrap();
        let entries = doc.as_arr().expect("bench file is a JSON array");
        assert_eq!(entries.len(), 2, "each run appends one row");
        assert_eq!(entries[0].get("rows").unwrap().as_f64(), Some(1500.0));
        assert_eq!(entries[0].get("seed").unwrap().as_f64(), Some(7.0));
        // A missing scenario directory is a config error (exit 2).
        let broken = parse_replay_args(&args("--scenario /no/such/dir")).unwrap();
        let err = run_replay(&broken).unwrap_err();
        assert!(matches!(err, CliError::Config(_)), "{err}");
    }

    #[test]
    fn execute_end_to_end_via_files() {
        // Materialize a tiny CSV + DAG, run the whole CLI path.
        let dir = std::env::temp_dir().join("faircap_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("d.csv");
        let dagf = dir.join("g.txt");
        let ds = faircap_data::so::generate(2_000, 3);
        let keep = ["gdp_group", "age", "certifications", "training", "salary"];
        faircap_table::csv::write_csv(&ds.df.select(&keep).unwrap(), &data).unwrap();
        std::fs::write(
            &dagf,
            "gdp_group -> salary\nage -> salary\ncertifications -> salary\ntraining -> salary\n",
        )
        .unwrap();
        let opts = parse_args(&args(&format!(
            "--data {} --dag {} --outcome salary --mutable certifications,training \
             --protected gdp_group=low --max-rules 5",
            data.display(),
            dagf.display()
        )))
        .unwrap();
        let report = execute(&opts).unwrap();
        assert!(report.size() <= 5);
        assert!(!report.rules.is_empty());
    }
}
