//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small API surface it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::random`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic per seed, which is
//! all the synthetic-data layer needs (statistical quality far beyond what
//! the planted-effect tolerances require).
//!
//! # The stream is pinned
//!
//! Since `faircap-scenario` promises **bit-reproducible** generated
//! datasets per `(spec, seed)` across platforms and toolchains, the exact
//! output stream of this shim is part of its public contract:
//!
//! * state seeding is SplitMix64 ([`split_mix64`], exposed so the
//!   published test vectors of Vigna's reference `splitmix64.c` can be
//!   asserted directly);
//! * the generator is xoshiro256++ exactly as published (rotl 23 / shift
//!   17 / rotl 45), state `[s0, s1, s2, s3]` filled by four SplitMix64
//!   steps from the seed;
//! * `f64` draws take the top 53 bits of one `u64` draw (`>> 11`) scaled
//!   by 2⁻⁵³; `f32` the top 24 bits; `bool` the lowest bit; integer draws
//!   are the raw `u64` (truncated for narrower types).
//!
//! All operations are integer arithmetic plus an exact dyadic float scale,
//! so streams cannot vary across platforms; the pinned-digest tests below
//! guard against accidental *algorithm* changes. Changing any of this
//! invalidates persisted scenario fingerprints — bump the scenario format
//! and regenerate published datasets if you ever must.

#![warn(missing_docs)]

/// One step of SplitMix64 (Vigna's reference `splitmix64.c`): advances
/// `state` and returns the next output. [`rngs::StdRng`] uses four steps of
/// this to expand a 64-bit seed into its xoshiro256++ state, as the xoshiro
/// authors recommend; it is exposed so the published reference vectors can
/// be pinned by tests.
pub fn split_mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.

    /// A deterministic 64-bit generator (xoshiro256++).
    ///
    /// Not the ChaCha12 generator of the real `rand` crate — sequences
    /// differ — but every consumer in this workspace only relies on
    /// per-seed determinism, not on a specific stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64_seed(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as the
            // xoshiro authors recommend.
            let mut x = seed;
            let mut next = || crate::split_mix64(&mut x);
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub(crate) fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Seeding interface (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64_seed(seed)
    }
}

/// Types samplable by [`Rng::random`].
pub trait Standard: Sized {
    /// Draw one value from the generator.
    fn sample(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for f64 {
    fn sample(rng: &mut rngs::StdRng) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample(rng: &mut rngs::StdRng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample(rng: &mut rngs::StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut rngs::StdRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample(rng: &mut rngs::StdRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample(rng: &mut rngs::StdRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample(rng: &mut rngs::StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Sampling interface (the `random` subset).
pub trait Rng {
    /// Draw a uniformly distributed value.
    fn random<T: Standard>(&mut self) -> T;
}

impl Rng for rngs::StdRng {
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        let mut c = rngs::StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.random::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval_with_plausible_mean() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..10_000).map(|_| rng.random::<f64>()).collect();
        assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn bool_is_roughly_balanced() {
        let mut rng = rngs::StdRng::seed_from_u64(2);
        let heads = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_500..5_500).contains(&heads), "heads = {heads}");
    }

    /// Published-vector test: Vigna's reference `splitmix64.c` seeded with
    /// 1234567 (the vector circulated with the reference sources and
    /// reused by many independent implementations).
    #[test]
    fn split_mix64_matches_published_vectors() {
        let mut state = 1234567u64;
        let got: Vec<u64> = (0..5).map(|_| split_mix64(&mut state)).collect();
        assert_eq!(
            got,
            [
                6457827717110365317,
                3203168211198807973,
                9817491932198370423,
                4593380528125082431,
                16408922859458223821,
            ]
        );
    }

    /// Pinned stream heads: the exact first four xoshiro256++ outputs per
    /// seed. These values are the reproducibility contract of every
    /// generated dataset — if this test fails, the generator changed and
    /// all persisted scenario fingerprints are invalid.
    #[test]
    fn stdrng_stream_heads_are_pinned() {
        let head = |seed: u64| -> Vec<u64> {
            let mut rng = rngs::StdRng::seed_from_u64(seed);
            (0..4).map(|_| rng.random::<u64>()).collect()
        };
        assert_eq!(
            head(0),
            [
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330,
            ]
        );
        assert_eq!(
            head(7),
            [
                1021219803524665661,
                3174977118032272916,
                13236943193235544178,
                7880630202246103356,
            ]
        );
        assert_eq!(
            head(42),
            [
                15021278609987233951,
                5881210131331364753,
                18149643915985481100,
                12933668939759105464,
            ]
        );
    }

    /// Pinned digest of a long stream prefix: FNV-1a 64 over the
    /// little-endian bytes of the first 10 000 `u64` draws. Catches drift
    /// anywhere in the state-update path, not just in the first outputs.
    #[test]
    fn stdrng_stream_digests_are_pinned() {
        let digest = |seed: u64| -> u64 {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            let mut rng = rngs::StdRng::seed_from_u64(seed);
            for _ in 0..10_000 {
                for b in rng.random::<u64>().to_le_bytes() {
                    h ^= u64::from(b);
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
            h
        };
        assert_eq!(digest(0), 0x9931_8f89_7a17_253f);
        assert_eq!(digest(7), 0x11e5_e9ae_cc21_c910);
        assert_eq!(digest(42), 0x2574_2bde_241a_e399);
    }

    /// The `u64 → f64` mapping is part of the pinned contract too: exact
    /// bit patterns of the first unit-interval draws for seed 7.
    #[test]
    fn f64_mapping_is_pinned() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        let bits: Vec<u64> = (0..3).map(|_| rng.random::<f64>().to_bits()).collect();
        assert_eq!(
            bits,
            [0x3fac583400555d20, 0x3fc607e46efd274c, 0x3fe6f66236761a8b]
        );
    }
}
