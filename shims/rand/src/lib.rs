//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small API surface it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::random`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic per seed, which is
//! all the synthetic-data layer needs (statistical quality far beyond what
//! the planted-effect tolerances require).

#![warn(missing_docs)]

pub mod rngs {
    //! Concrete generators.

    /// A deterministic 64-bit generator (xoshiro256++).
    ///
    /// Not the ChaCha12 generator of the real `rand` crate — sequences
    /// differ — but every consumer in this workspace only relies on
    /// per-seed determinism, not on a specific stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64_seed(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as the
            // xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub(crate) fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Seeding interface (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64_seed(seed)
    }
}

/// Types samplable by [`Rng::random`].
pub trait Standard: Sized {
    /// Draw one value from the generator.
    fn sample(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for f64 {
    fn sample(rng: &mut rngs::StdRng) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample(rng: &mut rngs::StdRng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample(rng: &mut rngs::StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut rngs::StdRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample(rng: &mut rngs::StdRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample(rng: &mut rngs::StdRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample(rng: &mut rngs::StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Sampling interface (the `random` subset).
pub trait Rng {
    /// Draw a uniformly distributed value.
    fn random<T: Standard>(&mut self) -> T;
}

impl Rng for rngs::StdRng {
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        let mut c = rngs::StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.random::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval_with_plausible_mean() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..10_000).map(|_| rng.random::<f64>()).collect();
        assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn bool_is_roughly_balanced() {
        let mut rng = rngs::StdRng::seed_from_u64(2);
        let heads = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_500..5_500).contains(&heads), "heads = {heads}");
    }
}
