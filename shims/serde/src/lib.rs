//! Minimal offline stand-in for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` derive macros (as no-ops) and
//! blanket marker traits so `T: Serialize` bounds still hold. Swapping the
//! workspace dependency back to crates.io `serde` requires no source change.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::ser::Serialize`; satisfied by every type.
pub trait SerializeMarker {}
impl<T: ?Sized> SerializeMarker for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`; satisfied by every type.
pub trait DeserializeMarker {}
impl<T: ?Sized> DeserializeMarker for T {}
