//! No-op `Serialize` / `Deserialize` derives.
//!
//! The build environment has no crates.io access, so the workspace's serde
//! derives expand to nothing: types stay annotated (and `#[serde(...)]`
//! attributes stay accepted) so the real `serde` can be swapped back in by
//! pointing the workspace dependency at crates.io — no source change needed.

use proc_macro::TokenStream;

/// Accept and discard a `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accept and discard a `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
