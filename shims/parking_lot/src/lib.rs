//! Minimal offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s panic-free locking
//! API (`lock()` returns the guard directly; a poisoned lock is recovered
//! rather than propagated, matching `parking_lot`'s no-poisoning semantics).

#![warn(missing_docs)]

use std::sync::{self, PoisonError};

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A mutual-exclusion primitive with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A reader–writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
