//! Minimal offline stand-in for `criterion`.
//!
//! Benches compile and run (`cargo bench`) with honest wall-clock numbers —
//! a short warmup followed by a handful of timed iterations, mean reported —
//! but without criterion's statistics, plots, or baselines. The API mirrors
//! the subset the workspace benches use: `Criterion::bench_function`,
//! `benchmark_group` (+ `sample_size` / `throughput` / `bench_with_input` /
//! `finish`), `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Throughput annotation (recorded, displayed alongside the timing).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timing harness handed to bench closures.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Time `f` over this bencher's iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warmup iteration.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.total = start.elapsed();
    }
}

fn run_one(
    label: &str,
    iters: u64,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        iters,
        total: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.total.checked_div(iters as u32).unwrap_or(Duration::ZERO);
    let extra = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!("  ({:.0} B/s)", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("{label:<60} {mean:>12.2?}/iter over {iters} iters{extra}");
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Hook for CLI-argument handling; a no-op here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Register and immediately run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into().name, self.sample_size as u64, None, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the iteration count for subsequent benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Record a throughput annotation for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set a target measurement time; recorded as a no-op here.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().name);
        run_one(&label, self.sample_size as u64, self.throughput, &mut f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.name);
        run_one(&label, self.sample_size as u64, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Bundle bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
