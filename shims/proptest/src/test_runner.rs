//! Deterministic RNG and case-failure plumbing for the shim runner.

use std::fmt;

/// Error carried out of a failing property case (`prop_assert!` family).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic generator driving strategy sampling (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed the generator from a test name (FNV-1a hash) so every property
    /// test gets a distinct but reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::from_seed(h)
    }

    /// Seed from a raw 64-bit value via SplitMix64 expansion.
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}
