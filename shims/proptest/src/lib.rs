//! Minimal offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of proptest the workspace's property tests use: the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_oneof!` macros,
//! the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`,
//! `Just`, `any::<T>()`, numeric-range strategies, tuple strategies, and
//! `prop::collection::vec`.
//!
//! Differences from the real crate: cases are sampled from a fixed
//! deterministic seed (derived from the test name) rather than a fresh
//! entropy source, and failing cases are reported without shrinking. Each
//! test runs 64 cases.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace alias so `prop::collection::vec(...)` works, as with the
    /// real crate's prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples and checks 64 cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..64u32 {
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);)+
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!("property failed on case {case}: {e}");
                    }
                }
            }
        )+
    };
}

/// Fail the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fail the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniformly choose between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
