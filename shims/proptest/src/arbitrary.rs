//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Canonical whole-domain strategy for a primitive type.
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        // Finite, mixed-sign, spanning several magnitudes — a practical
        // whole-domain stand-in without NaN/inf edge cases.
        let mag = rng.unit_f64() * 6.0 - 3.0; // exponent in [-3, 3)
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * 10f64.powf(mag)
    }
}

macro_rules! any_int {
    ($($t:ty),+) => {
        $(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+
    };
}

any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
