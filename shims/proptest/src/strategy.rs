//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic sampler over the runner's RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values passing the predicate (resamples up to a bound).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 consecutive samples",
            self.whence
        )
    }
}

/// A vector of strategies samples element-wise (mirroring proptest, where
/// `Vec<S: Strategy>` yields `Vec<S::Value>`).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

/// String strategies from a small regex subset, mirroring proptest's
/// `&str`-as-regex convention. Supported: literal characters, `[a-z]`-style
/// character classes (ranges and singletons), and `{m,n}` / `{n}` / `*` /
/// `+` / `?` quantifiers on the preceding atom.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let chars: Vec<char> = self.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // Parse one atom: a character class or a literal.
            let mut alphabet: Vec<char> = Vec::new();
            if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed `[` in regex strategy `{self}`"));
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        alphabet.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        alphabet.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
            } else {
                let c = if chars[i] == '\\' && i + 1 < chars.len() {
                    i += 1;
                    chars[i]
                } else {
                    chars[i]
                };
                alphabet.push(c);
                i += 1;
            }
            // Parse an optional quantifier.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed `{{` in regex strategy `{self}`"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("regex repeat lower bound"),
                        n.trim().parse().expect("regex repeat upper bound"),
                    ),
                    None => {
                        let n: usize = body.trim().parse().expect("regex repeat count");
                        (n, n)
                    }
                }
            } else if i < chars.len() && (chars[i] == '*' || chars[i] == '+' || chars[i] == '?') {
                let q = chars[i];
                i += 1;
                match q {
                    '*' => (0, 8),
                    '+' => (1, 8),
                    _ => (0, 1),
                }
            } else {
                (1, 1)
            };
            let reps = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..reps {
                let k = rng.below(alphabet.len() as u64) as usize;
                out.push(alphabet[k]);
            }
        }
        out
    }
}

/// Uniform choice among boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from a non-empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )+
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)+) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
    (A, B, C, D, E, F, G);
}
